// Bit-parallel multi-source BFS (MS-BFS).
//
// One pass of MultiSourceBfs advances up to 64 BFS traversals at once: every
// node carries a single `uint64_t` word per bitmap (seen / current frontier /
// next frontier) in which bit j belongs to source lane j. A level expansion
// ORs frontier words across edges instead of walking one queue per source, so
// the graph — and every cache line of the CSR arrays — is touched once per
// level for the whole batch rather than once per source. On the cube-based
// topologies here, a block of 64 insertion-order-adjacent servers shares most
// of its frontier, which is where the order-of-magnitude win over 64 separate
// sweeps comes from.
//
// The kernel is direction-optimizing: sparse levels run top-down (scatter the
// frontier words of active nodes to their neighbors, tracking touched nodes
// so the claim pass is O(frontier edges), not O(V)), dense levels run
// bottom-up (each still-unfinished node gathers its neighbors' frontier words
// branchlessly — on these low-degree topologies an early-exit test costs more
// than the one or two extra ORs it saves). The switch is keyed on frontier
// size against the shrinking not-yet-finished node set — a pure function of
// the traversal state — and both directions compute the identical next
// frontier, so results never depend on the direction taken.
//
// Determinism contract: distances and visit callbacks are a pure function of
// (graph, sources, failures). The per-level visit order is ascending node id,
// all lane combination is bitwise OR (order-free), and batch-parallel callers
// (metrics/path_metrics.cc) split sources into fixed 64-lane blocks merged in
// block order via ParallelMapReduce — results are bit-identical for any
// thread count. tests/test_msbfs.cc pins MS-BFS distances to per-source
// BFS() on every topology family, with and without failures.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "graph/csr.h"
#include "graph/graph.h"
#include "graph/workspace.h"
#include "obs/obs.h"

namespace dcn::graph {

// Lane width of one batch: one bit per source in a machine word.
inline constexpr std::size_t kMsBfsLanes = 64;

namespace msbfs_detail {
// Run a level bottom-up once active nodes exceed unfinished/kBottomUpDivisor.
// Top-down work is O(edges out of the frontier); bottom-up is O(edges into
// still-unfinished nodes), which wins once the frontier is a sizable slice of
// what is left. Swept empirically on the ABCCC(4,3,2) all-pairs kernel:
// 6 beat 2/4/16/32 with a shallow optimum.
inline constexpr std::size_t kBottomUpDivisor = 6;
}  // namespace msbfs_detail

// All-lanes-set mask for a batch of `lanes` sources (lanes in [0, 64]).
inline std::uint64_t MsBfsLaneMask(std::size_t lanes) {
  return lanes >= kMsBfsLanes ? ~std::uint64_t{0}
                              : (std::uint64_t{1} << lanes) - 1;
}

// Advances one batch of up to 64 sources to exhaustion. For every node that
// is newly reached at BFS level d (in links, level 0 = the sources
// themselves), calls
//
//   visit(d, node, bits)
//
// exactly once, where bit j of `bits` is set iff sources[j] first reaches
// `node` at distance d. Levels are visited in increasing order; within a
// level, nodes in ascending id order. Duplicate sources share a node and are
// reported together; a source dead under `failures` never seeds its lane (its
// bit appears in no callback). After the call ws.SeenWord(node) holds the
// union of all levels' bits — the per-lane reachability readout.
//
// With `failures`, traversal skips dead nodes/links exactly like the
// single-source BfsDistances; direction optimization is disabled because the
// bottom-up gather cannot consult per-edge liveness through the edge-blind
// adjacency array (failure sweeps are sparse frontiers in practice).
template <typename Visit>
void MultiSourceBfs(const CsrView& csr, std::span<const NodeId> sources,
                    MsBfsWorkspace& ws, Visit&& visit,
                    const FailureSet* failures = nullptr) {
  DCN_REQUIRE(sources.size() <= kMsBfsLanes,
              "MultiSourceBfs batch exceeds 64 lanes");
  const std::size_t nodes = csr.NodeCount();
  ws.Begin(nodes);
  std::uint64_t* const seen = ws.Seen();
  // `cur` is the current level's frontier, `nxt` the one being built; they
  // rotate by pointer swap, with the retired frontier zeroed through the
  // outgoing active list — no O(V) pass per level.
  std::uint64_t* cur = ws.Front();
  std::uint64_t* nxt = ws.Next();
  std::vector<NodeId>* active = &ws.Active();
  std::vector<NodeId>* spare = &ws.Spare();
  std::vector<NodeId>& candidates = ws.Candidates();
  // Nodes still missing at least one live lane, ascending, built lazily on
  // the first bottom-up level and compacted as lanes settle. Its size bounds
  // the useful bottom-up work, so it also drives the direction switch.
  std::vector<NodeId>& unfinished = ws.Unfinished();
  bool unfinished_built = false;
  std::size_t unfinished_size = nodes;

  std::uint64_t live = 0;  // lanes actually seeded (dead sources drop out)
  for (std::size_t lane = 0; lane < sources.size(); ++lane) {
    const NodeId src = sources[lane];
    DCN_REQUIRE(src >= 0 && static_cast<std::size_t>(src) < nodes,
                "MultiSourceBfs source out of range");
    if (failures != nullptr && failures->NodeDead(src)) continue;
    const std::uint64_t bit = std::uint64_t{1} << lane;
    if (seen[src] == 0) active->push_back(src);
    seen[src] |= bit;
    cur[src] |= bit;
    live |= bit;
  }
  std::sort(active->begin(), active->end());
  for (const NodeId node : *active) visit(0, node, cur[node]);

  // obs: batch/lane totals plus per-level frontier size (log2 buckets) and
  // the top-down/bottom-up switch decisions — the internals that explain the
  // direction-optimizing kernel's behavior. All exact integers, a handful of
  // relaxed shard increments per LEVEL (never per node or edge), so the
  // traversal itself is untouched and the merged values are bit-identical at
  // any thread count.
  OBS_SPAN("msbfs/batch");
  static obs::Counter& obs_batches = obs::GetCounter("msbfs/batches");
  static obs::Counter& obs_lanes = obs::GetCounter("msbfs/lanes");
  static obs::Counter& obs_td = obs::GetCounter("msbfs/levels_top_down");
  static obs::Counter& obs_bu = obs::GetCounter("msbfs/levels_bottom_up");
  static obs::Counter& obs_switches =
      obs::GetCounter("msbfs/direction_switches");
  static obs::Histogram& obs_frontier =
      obs::GetHistogram("msbfs/frontier_log2");
  obs_batches.Add(1);
  obs_lanes.Add(static_cast<std::uint64_t>(std::popcount(live)));
  bool obs_prev_bottom_up = false;

  for (int level = 1; !active->empty(); ++level) {
    spare->clear();
    const bool bottom_up =
        failures == nullptr && active->size() * msbfs_detail::kBottomUpDivisor >
                                   unfinished_size;
    (bottom_up ? obs_bu : obs_td).Add(1);
    if (level > 1 && bottom_up != obs_prev_bottom_up) obs_switches.Add(1);
    obs_prev_bottom_up = bottom_up;
    obs_frontier.Add(std::bit_width(active->size()));
    if (bottom_up) {
      if (!unfinished_built) {
        for (NodeId node = 0; static_cast<std::size_t>(node) < nodes; ++node) {
          if ((live & ~seen[node]) != 0) unfinished.push_back(node);
        }
        unfinished_built = true;
      }
      // Gather: every node still missing lanes pulls the frontier words of
      // all its neighbors (branchless; degrees here are small). The claim is
      // fused in — `nxt` and `seen` of other nodes are never read here, so
      // settling in place is safe — and nodes drop out of the unfinished
      // list (stably, preserving ascending order) as they fill.
      std::size_t out = 0;
      for (const NodeId node : unfinished) {
        const std::uint64_t miss = live & ~seen[node];
        if (miss == 0) continue;
        std::uint64_t acc = 0;
        for (const NodeId nb : csr.AdjacentNodes(node)) {
          acc |= cur[nb];
        }
        const std::uint64_t add = acc & miss;
        if (add != 0) {
          seen[node] |= add;
          nxt[node] = add;
          spare->push_back(node);
          visit(level, node, add);
        }
        if ((live & ~seen[node]) != 0) unfinished[out++] = node;
      }
      unfinished.resize(out);
      unfinished_size = out;
    } else {
      // Scatter: push each active node's word to all neighbors, remembering
      // first-touched nodes so the claim pass visits only those instead of
      // sweeping all of [0, V).
      candidates.clear();
      if (failures == nullptr) {
        for (const NodeId node : *active) {
          const std::uint64_t word = cur[node];
          for (const NodeId nb : csr.AdjacentNodes(node)) {
            if (nxt[nb] == 0) candidates.push_back(nb);
            nxt[nb] |= word;
          }
        }
      } else {
        for (const NodeId node : *active) {
          const std::uint64_t word = cur[node];
          for (const HalfEdge& half : csr.Neighbors(node)) {
            if (!failures->HalfEdgeUsable(half)) continue;
            if (nxt[half.to] == 0) candidates.push_back(half.to);
            nxt[half.to] |= word;
          }
        }
      }
      // Claim pass over the touched nodes, ascending — hence the visit order.
      std::sort(candidates.begin(), candidates.end());
      for (const NodeId node : candidates) {
        const std::uint64_t add = nxt[node] & ~seen[node];
        if (add != 0) {
          seen[node] |= add;
          nxt[node] = add;
          spare->push_back(node);
          visit(level, node, add);
        } else {
          nxt[node] = 0;
        }
      }
    }

    // Retire the old frontier (zero exactly its nonzero words) and rotate.
    for (const NodeId node : *active) cur[node] = 0;
    std::swap(cur, nxt);
    std::swap(active, spare);
  }
}

// Distances (in links) from every source to every node, batching the sources
// through MultiSourceBfs in 64-lane blocks. Row-major: the returned vector
// holds sources.size() * csr.NodeCount() entries and
// result[i * NodeCount() + node] is the distance from sources[i] to node,
// kUnreachable where no live path exists. Any source count is accepted;
// each row equals BfsDistances(csr, sources[i], ...) exactly.
std::vector<int> MultiSourceDistances(const CsrView& csr,
                                      std::span<const NodeId> sources,
                                      const FailureSet* failures = nullptr);

// Eccentricity of each source restricted to SERVER targets (the distance
// convention of the diameter tables): result[i] is the max distance from
// sources[i] to any reachable server, or kUnreachable for a source that is
// dead under `failures`. One 64-lane batch per block of sources.
std::vector<int> ServerEccentricities(const CsrView& csr,
                                      std::span<const NodeId> sources,
                                      const FailureSet* failures = nullptr);

// Aggregates of the full server-to-server distance matrix, computed without
// materializing it: the backing kernel for ExactServerPathStats and the
// T1/T2/F-table sweeps. All counters are exact integers accumulated per
// 64-lane block and merged in fixed block order (common/parallel.h), so the
// result is bit-identical at any thread count.
struct AllPairsSweepStats {
  std::int64_t distance_total = 0;  // sum over ordered reachable pairs
  std::uint64_t pairs = 0;          // ordered server pairs reached (src != dst)
  int diameter = 0;                 // max server-to-server distance
  int radius = 0;                   // min over sources of server eccentricity
  bool connected = true;            // every source reached every server
  // pairs_at_distance[d] = ordered pairs at exactly distance d (the exact
  // path-length histogram); index 0 is always 0 — self pairs are excluded.
  std::vector<std::uint64_t> pairs_at_distance;
};

// One MS-BFS block per 64 servers, parallelized across blocks.
AllPairsSweepStats AllPairsDistanceSweep(const CsrView& csr);

}  // namespace dcn::graph
