#include "graph/graph.h"

#include "common/error.h"
#include "graph/csr.h"

namespace dcn::graph {

Graph::Graph() = default;
Graph::~Graph() = default;

Graph::Graph(const Graph& other)
    : kinds_(other.kinds_),
      adjacency_(other.adjacency_),
      endpoints_(other.endpoints_),
      servers_(other.servers_) {}

Graph& Graph::operator=(const Graph& other) {
  if (this != &other) {
    kinds_ = other.kinds_;
    adjacency_ = other.adjacency_;
    endpoints_ = other.endpoints_;
    servers_ = other.servers_;
    csr_.store(nullptr, std::memory_order_release);
  }
  return *this;
}

Graph::Graph(Graph&& other) noexcept
    : kinds_(std::move(other.kinds_)),
      adjacency_(std::move(other.adjacency_)),
      endpoints_(std::move(other.endpoints_)),
      servers_(std::move(other.servers_)) {
  csr_.store(other.csr_.exchange(nullptr, std::memory_order_acq_rel),
             std::memory_order_release);
}

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this != &other) {
    kinds_ = std::move(other.kinds_);
    adjacency_ = std::move(other.adjacency_);
    endpoints_ = std::move(other.endpoints_);
    servers_ = std::move(other.servers_);
    csr_.store(other.csr_.exchange(nullptr, std::memory_order_acq_rel),
               std::memory_order_release);
  }
  return *this;
}

NodeId Graph::AddNode(NodeKind kind) {
  const auto id = static_cast<NodeId>(kinds_.size());
  kinds_.push_back(kind);
  adjacency_.emplace_back();
  if (kind == NodeKind::kServer) servers_.push_back(id);
  csr_.store(nullptr, std::memory_order_release);
  return id;
}

EdgeId Graph::AddEdge(NodeId u, NodeId v) {
  CheckNode(u);
  CheckNode(v);
  DCN_REQUIRE(u != v, "self-loop links are not allowed");
  const auto id = static_cast<EdgeId>(endpoints_.size());
  endpoints_.emplace_back(u, v);
  adjacency_[u].push_back(HalfEdge{v, id});
  adjacency_[v].push_back(HalfEdge{u, id});
  csr_.store(nullptr, std::memory_order_release);
  return id;
}

const CsrView& Graph::Csr() const {
  std::shared_ptr<const CsrView> snap = csr_.load(std::memory_order_acquire);
  if (snap == nullptr) {
    auto built = std::make_shared<const CsrView>(*this);
    std::shared_ptr<const CsrView> expected;
    if (csr_.compare_exchange_strong(expected, built,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      snap = std::move(built);
    } else {
      snap = std::move(expected);  // another thread won the build race
    }
  }
  // The cache keeps the view alive; only a mutation releases it.
  return *snap;
}

NodeKind Graph::KindOf(NodeId node) const {
  CheckNode(node);
  return kinds_[node];
}

std::span<const HalfEdge> Graph::Neighbors(NodeId node) const {
  CheckNode(node);
  return adjacency_[node];
}

std::pair<NodeId, NodeId> Graph::Endpoints(EdgeId edge) const {
  DCN_REQUIRE(edge >= 0 && static_cast<std::size_t>(edge) < endpoints_.size(),
              "edge id out of range");
  return endpoints_[edge];
}

NodeId Graph::OtherEnd(EdgeId edge, NodeId node) const {
  const auto [u, v] = Endpoints(edge);
  DCN_REQUIRE(node == u || node == v, "node is not an endpoint of edge");
  return node == u ? v : u;
}

bool Graph::Adjacent(NodeId u, NodeId v) const {
  return FindEdge(u, v) != kInvalidEdge;
}

EdgeId Graph::FindEdge(NodeId u, NodeId v) const {
  CheckNode(u);
  CheckNode(v);
  const NodeId from = Degree(u) <= Degree(v) ? u : v;
  const NodeId to = from == u ? v : u;
  for (const HalfEdge& half : adjacency_[from]) {
    if (half.to == to) return half.edge;
  }
  return kInvalidEdge;
}

void Graph::CheckNode(NodeId node) const {
  DCN_REQUIRE(node >= 0 && static_cast<std::size_t>(node) < kinds_.size(),
              "node id out of range");
}

void FailureSet::KillNode(NodeId node) {
  DCN_REQUIRE(node >= 0 && static_cast<std::size_t>(node) < node_dead_.size(),
              "FailureSet::KillNode id out of range");
  node_dead_[node] = true;
}

void FailureSet::KillEdge(EdgeId edge) {
  DCN_REQUIRE(edge >= 0 && static_cast<std::size_t>(edge) < edge_dead_.size(),
              "FailureSet::KillEdge id out of range");
  edge_dead_[edge] = true;
}

void FailureSet::ReviveNode(NodeId node) {
  DCN_REQUIRE(node >= 0 && static_cast<std::size_t>(node) < node_dead_.size(),
              "FailureSet::ReviveNode id out of range");
  node_dead_[node] = false;
}

void FailureSet::ReviveEdge(EdgeId edge) {
  DCN_REQUIRE(edge >= 0 && static_cast<std::size_t>(edge) < edge_dead_.size(),
              "FailureSet::ReviveEdge id out of range");
  edge_dead_[edge] = false;
}

std::size_t FailureSet::DeadNodeCount() const {
  std::size_t count = 0;
  for (bool dead : node_dead_) count += dead ? 1 : 0;
  return count;
}

std::size_t FailureSet::DeadEdgeCount() const {
  std::size_t count = 0;
  for (bool dead : edge_dead_) count += dead ? 1 : 0;
  return count;
}

std::string ToString(NodeKind kind) {
  return kind == NodeKind::kServer ? "server" : "switch";
}

}  // namespace dcn::graph
