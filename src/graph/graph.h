// Core network graph.
//
// Data-center networks here are undirected multigraphs with typed nodes:
// servers (which originate, forward, and sink traffic in server-centric
// designs) and switches (dumb crossbars that only relay). Links are
// full-duplex; one EdgeId covers both directions. The representation favors
// construction simplicity and cache-friendly iteration over mutation: the
// topology builders append nodes/edges once and never delete, while failures
// are modeled as an overlay mask (FailureSet) so a single built graph can be
// probed under many failure scenarios.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace dcn::graph {

class CsrView;

using NodeId = std::int32_t;
using EdgeId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;

enum class NodeKind : std::uint8_t { kServer, kSwitch };

// One directed view of an undirected edge, as seen from the adjacency list of
// its source node.
struct HalfEdge {
  NodeId to = kInvalidNode;
  EdgeId edge = kInvalidEdge;
};

class Graph {
 public:
  // Out of line because the cached CSR snapshot (an atomic shared_ptr to an
  // incomplete type here) needs csr.h; copies/moves transfer the topology,
  // and a copy starts with a cold cache.
  Graph();
  ~Graph();
  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&& other) noexcept;
  Graph& operator=(Graph&& other) noexcept;

  NodeId AddNode(NodeKind kind);
  // Adds an undirected link. Self-loops are rejected; parallel links are
  // allowed (some topologies bundle links between the same pair).
  EdgeId AddEdge(NodeId u, NodeId v);

  std::size_t NodeCount() const { return kinds_.size(); }
  std::size_t EdgeCount() const { return endpoints_.size(); }

  NodeKind KindOf(NodeId node) const;
  bool IsServer(NodeId node) const { return KindOf(node) == NodeKind::kServer; }
  bool IsSwitch(NodeId node) const { return KindOf(node) == NodeKind::kSwitch; }

  std::span<const HalfEdge> Neighbors(NodeId node) const;
  std::size_t Degree(NodeId node) const { return Neighbors(node).size(); }
  std::pair<NodeId, NodeId> Endpoints(EdgeId edge) const;
  // The endpoint of `edge` that is not `node`.
  NodeId OtherEnd(EdgeId edge, NodeId node) const;
  // True if some link directly connects u and v. O(min degree): the scan
  // runs over whichever endpoint has the smaller adjacency list.
  bool Adjacent(NodeId u, NodeId v) const;
  // The id of one link connecting u and v, or kInvalidEdge. Scans the
  // smaller endpoint's adjacency list (O(min degree)); because adjacency
  // lists append in edge-id order, the result is the LOWEST-id link between
  // the pair no matter which side is scanned — pinned by GraphTest.
  EdgeId FindEdge(NodeId u, NodeId v) const;

  std::size_t ServerCount() const { return servers_.size(); }
  std::size_t SwitchCount() const { return NodeCount() - ServerCount(); }
  // All server node ids, in insertion order.
  std::span<const NodeId> Servers() const { return servers_; }

  // Flat CSR snapshot of the current adjacency (see graph/csr.h) — the
  // representation every traversal hot path runs on. Built on first use and
  // cached; AddNode/AddEdge invalidate the cache. Concurrent Csr() calls are
  // safe (first-build races resolve to one winner); like every const method,
  // it must not race with mutation. The reference stays valid until the next
  // mutation of this graph.
  const CsrView& Csr() const;

 private:
  void CheckNode(NodeId node) const;

  std::vector<NodeKind> kinds_;
  std::vector<std::vector<HalfEdge>> adjacency_;
  std::vector<std::pair<NodeId, NodeId>> endpoints_;
  std::vector<NodeId> servers_;
  mutable std::atomic<std::shared_ptr<const CsrView>> csr_;
};

// Overlay marking dead nodes and links. A dead node implicitly kills all of
// its links; a dead link leaves its endpoints alive.
class FailureSet {
 public:
  FailureSet() = default;
  explicit FailureSet(const Graph& graph)
      : FailureSet(graph.NodeCount(), graph.EdgeCount()) {}
  // For implicit (never materialized) graphs, where the node and link counts
  // are known arithmetically but no Graph exists.
  FailureSet(std::size_t nodes, std::size_t edges)
      : node_dead_(nodes, false), edge_dead_(edges, false) {}

  void KillNode(NodeId node);
  void KillEdge(EdgeId edge);
  void ReviveNode(NodeId node);
  void ReviveEdge(EdgeId edge);

  bool NodeDead(NodeId node) const {
    return node >= 0 && static_cast<std::size_t>(node) < node_dead_.size() &&
           node_dead_[node];
  }
  bool EdgeDead(EdgeId edge) const {
    return edge >= 0 && static_cast<std::size_t>(edge) < edge_dead_.size() &&
           edge_dead_[edge];
  }
  // True if the hop across `half` out of any live node is usable.
  bool HalfEdgeUsable(const HalfEdge& half) const {
    return !EdgeDead(half.edge) && !NodeDead(half.to);
  }

  std::size_t DeadNodeCount() const;
  std::size_t DeadEdgeCount() const;

 private:
  std::vector<bool> node_dead_;
  std::vector<bool> edge_dead_;
};

std::string ToString(NodeKind kind);

}  // namespace dcn::graph
