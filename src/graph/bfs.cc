#include "graph/bfs.h"

#include "common/error.h"

namespace dcn::graph {

namespace {

void CheckSource(std::size_t node_count, NodeId src) {
  DCN_REQUIRE(src >= 0 && static_cast<std::size_t>(src) < node_count,
              "BFS source out of range");
}

}  // namespace

std::size_t BfsDistances(const CsrView& csr, NodeId src, TraversalWorkspace& ws,
                         const FailureSet* failures) {
  CheckSource(csr.NodeCount(), src);
  ws.Begin(csr.NodeCount());
  if (failures != nullptr && failures->NodeDead(src)) return 0;
  std::vector<NodeId>& queue = ws.Frontier();
  ws.Settle(src, 0);
  queue.push_back(src);
  if (failures == nullptr) {
    // Distance-only sweep on the healthy graph: the all-pairs hot path. The
    // parent-less Settle writes one word per settled node; the queue is
    // level-ordered, so tracking the level boundary replaces a distance read
    // per dequeued node; and the edge-blind adjacency array halves the bytes
    // the neighbor scan touches.
    int next = 1;
    std::size_t level_end = queue.size();
    for (std::size_t head = 0; head < queue.size(); ++head) {
      if (head == level_end) {
        ++next;
        level_end = queue.size();
      }
      for (const NodeId to : csr.AdjacentNodes(queue[head])) {
        if (ws.Settle(to, next)) queue.push_back(to);
      }
    }
    return queue.size();
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId node = queue[head];
    const int next = ws.Dist(node) + 1;
    for (const HalfEdge& half : csr.Neighbors(node)) {
      if (!failures->HalfEdgeUsable(half)) continue;
      if (ws.Settle(half.to, next)) queue.push_back(half.to);
    }
  }
  return queue.size();
}

std::vector<NodeId> ShortestPath(const CsrView& csr, NodeId src, NodeId dst,
                                 TraversalWorkspace& ws,
                                 const FailureSet* failures) {
  CheckSource(csr.NodeCount(), src);
  DCN_REQUIRE(dst >= 0 && static_cast<std::size_t>(dst) < csr.NodeCount(),
              "BFS destination out of range");
  if (failures != nullptr &&
      (failures->NodeDead(src) || failures->NodeDead(dst))) {
    return {};
  }
  if (src == dst) return {src};

  ws.Begin(csr.NodeCount());
  std::vector<NodeId>& queue = ws.Frontier();
  ws.Settle(src, 0, kInvalidNode);
  queue.push_back(src);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId node = queue[head];
    const int next = ws.Dist(node) + 1;
    for (const HalfEdge& half : csr.Neighbors(node)) {
      if (failures != nullptr && !failures->HalfEdgeUsable(half)) continue;
      if (!ws.Settle(half.to, next, node)) continue;
      if (half.to == dst) {
        // Settled dst: stop the sweep and walk parents back to src.
        std::vector<NodeId> path;
        path.reserve(static_cast<std::size_t>(next) + 1);
        for (NodeId at = dst; at != kInvalidNode; at = ws.Parent(at)) {
          path.push_back(at);
        }
        return {path.rbegin(), path.rend()};
      }
      queue.push_back(half.to);
    }
  }
  return {};
}

std::vector<int> BfsDistances(const Graph& graph, NodeId src,
                              const FailureSet* failures) {
  CheckSource(graph.NodeCount(), src);
  TraversalScope ws;
  BfsDistances(graph.Csr(), src, *ws, failures);
  std::vector<int> dist(graph.NodeCount(), kUnreachable);
  for (const NodeId node : ws->VisitOrder()) dist[node] = ws->DistSettled(node);
  return dist;
}

std::vector<NodeId> ShortestPath(const Graph& graph, NodeId src, NodeId dst,
                                 const FailureSet* failures) {
  TraversalScope ws;
  return ShortestPath(graph.Csr(), src, dst, *ws, failures);
}

std::size_t ReachableCount(const Graph& graph, NodeId src,
                           const FailureSet* failures) {
  CheckSource(graph.NodeCount(), src);
  TraversalScope ws;
  // A dead src reaches 0 nodes — the same count the all-unreachable distance
  // vector used to produce.
  return BfsDistances(graph.Csr(), src, *ws, failures);
}

bool IsConnected(const Graph& graph, const FailureSet* failures) {
  if (graph.NodeCount() == 0) return true;
  NodeId start = kInvalidNode;
  std::size_t live = 0;
  for (NodeId node = 0; static_cast<std::size_t>(node) < graph.NodeCount();
       ++node) {
    if (failures != nullptr && failures->NodeDead(node)) continue;
    ++live;
    if (start == kInvalidNode) start = node;
  }
  if (live == 0) return true;
  return ReachableCount(graph, start, failures) == live;
}

}  // namespace dcn::graph
