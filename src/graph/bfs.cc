#include "graph/bfs.h"

#include <deque>

#include "common/error.h"

namespace dcn::graph {

std::vector<int> BfsDistances(const Graph& graph, NodeId src,
                              const FailureSet* failures) {
  DCN_REQUIRE(src >= 0 && static_cast<std::size_t>(src) < graph.NodeCount(),
              "BFS source out of range");
  std::vector<int> dist(graph.NodeCount(), kUnreachable);
  if (failures != nullptr && failures->NodeDead(src)) return dist;
  std::deque<NodeId> queue;
  dist[src] = 0;
  queue.push_back(src);
  while (!queue.empty()) {
    const NodeId node = queue.front();
    queue.pop_front();
    for (const HalfEdge& half : graph.Neighbors(node)) {
      if (failures != nullptr && !failures->HalfEdgeUsable(half)) continue;
      if (dist[half.to] != kUnreachable) continue;
      dist[half.to] = dist[node] + 1;
      queue.push_back(half.to);
    }
  }
  return dist;
}

std::vector<NodeId> ShortestPath(const Graph& graph, NodeId src, NodeId dst,
                                 const FailureSet* failures) {
  DCN_REQUIRE(src >= 0 && static_cast<std::size_t>(src) < graph.NodeCount(),
              "BFS source out of range");
  DCN_REQUIRE(dst >= 0 && static_cast<std::size_t>(dst) < graph.NodeCount(),
              "BFS destination out of range");
  if (failures != nullptr && (failures->NodeDead(src) || failures->NodeDead(dst))) {
    return {};
  }
  if (src == dst) return {src};

  std::vector<NodeId> parent(graph.NodeCount(), kInvalidNode);
  std::vector<bool> seen(graph.NodeCount(), false);
  std::deque<NodeId> queue;
  seen[src] = true;
  queue.push_back(src);
  while (!queue.empty()) {
    const NodeId node = queue.front();
    queue.pop_front();
    for (const HalfEdge& half : graph.Neighbors(node)) {
      if (failures != nullptr && !failures->HalfEdgeUsable(half)) continue;
      if (seen[half.to]) continue;
      seen[half.to] = true;
      parent[half.to] = node;
      if (half.to == dst) {
        std::vector<NodeId> path;
        for (NodeId at = dst; at != kInvalidNode; at = parent[at]) path.push_back(at);
        return {path.rbegin(), path.rend()};
      }
      queue.push_back(half.to);
    }
  }
  return {};
}

std::size_t ReachableCount(const Graph& graph, NodeId src,
                           const FailureSet* failures) {
  const std::vector<int> dist = BfsDistances(graph, src, failures);
  std::size_t count = 0;
  for (int d : dist) count += d != kUnreachable ? 1 : 0;
  return count;
}

bool IsConnected(const Graph& graph, const FailureSet* failures) {
  if (graph.NodeCount() == 0) return true;
  NodeId start = kInvalidNode;
  std::size_t live = 0;
  for (NodeId node = 0; static_cast<std::size_t>(node) < graph.NodeCount(); ++node) {
    if (failures != nullptr && failures->NodeDead(node)) continue;
    ++live;
    if (start == kInvalidNode) start = node;
  }
  if (live == 0) return true;
  return ReachableCount(graph, start, failures) == live;
}

}  // namespace dcn::graph
