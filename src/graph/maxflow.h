// Dinic's max-flow over the undirected network graph, used for empirical
// bisection bandwidth and for counting edge-disjoint paths. Each undirected
// link of capacity c is modeled as a pair of opposite arcs of capacity c,
// which is the standard reduction for undirected flow.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace dcn::graph {

class MaxFlowSolver {
 public:
  // Builds the flow network. `edge_capacity` is applied uniformly to every
  // link (bisection in "number of unit links"). Dead nodes/links from
  // `failures` are excluded entirely.
  MaxFlowSolver(const Graph& graph, std::int64_t edge_capacity = 1,
                const FailureSet* failures = nullptr);

  // Max flow from the set `sources` to the set `sinks` (disjoint, non-empty).
  // Source/sink attachment arcs are effectively infinite, so the answer is
  // the min link cut. After a solve the arc capacities hold the residual
  // network, so a second call throws until Reset() is called — the live-edge
  // list survives, making repeated solves on one graph (Gomory–Hu, batched
  // sampling) cheaper than rebuilding the solver.
  std::int64_t Solve(std::span<const NodeId> sources, std::span<const NodeId> sinks);

  // Re-arms the solver for another Solve on the same graph/failure set. The
  // arc arrays are rebuilt from the retained live-edge list by the next
  // Solve, so this is O(1).
  void Reset();

  // The source side of the min cut found by the last Solve: side[n] != 0 iff
  // base node n is reachable from the super source in the residual network.
  // `side` is sized to the base node count. Requires a completed Solve.
  void MinCutSourceSide(std::vector<char>& side) const;

 private:
  // Arcs live in a flat CSR layout (offset_ per node into parallel to_/rev_/
  // cap_ arrays) built inside Solve once the super source/sink attachments
  // are known — contiguous iteration instead of a vector-of-vectors pointer
  // chase, and the level/iterator scratch is reused across Dinic phases
  // without reallocating.
  void AddArcPair(std::int32_t from, std::int32_t to, std::int64_t cap);
  bool BuildLevels(std::int32_t s, std::int32_t t);
  std::int64_t Augment(std::int32_t node, std::int32_t t, std::int64_t limit);

  std::vector<std::pair<std::int32_t, std::int32_t>> live_edges_;
  std::int64_t edge_capacity_;
  bool solved_ = false;

  std::vector<std::int32_t> offset_;  // node -> first arc
  std::vector<std::int32_t> cursor_;  // per-node fill cursor during build
  std::vector<std::int32_t> to_;
  std::vector<std::int32_t> rev_;  // global index of the twin arc
  std::vector<std::int64_t> cap_;
  std::vector<int> level_;
  std::vector<std::int32_t> iter_;
  std::vector<std::int32_t> queue_;
  std::size_t base_node_count_;  // nodes of the original graph
};

// Convenience: min cut (in links, each counting `edge_capacity`) separating
// the two server sets.
std::int64_t MinCutBetween(const Graph& graph, std::span<const NodeId> side_a,
                           std::span<const NodeId> side_b,
                           std::int64_t edge_capacity = 1,
                           const FailureSet* failures = nullptr);

}  // namespace dcn::graph
