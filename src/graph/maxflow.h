// Dinic's max-flow over the undirected network graph, used for empirical
// bisection bandwidth and for counting edge-disjoint paths. Each undirected
// link of capacity c is modeled as a pair of opposite arcs of capacity c,
// which is the standard reduction for undirected flow.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace dcn::graph {

class MaxFlowSolver {
 public:
  // Builds the flow network. `edge_capacity` is applied uniformly to every
  // link (bisection in "number of unit links"). Dead nodes/links from
  // `failures` are excluded entirely.
  MaxFlowSolver(const Graph& graph, std::int64_t edge_capacity = 1,
                const FailureSet* failures = nullptr);

  // Max flow from the set `sources` to the set `sinks` (disjoint, non-empty).
  // Source/sink attachment arcs are effectively infinite, so the answer is
  // the min link cut. Resets internal flow state on every call.
  std::int64_t Solve(std::span<const NodeId> sources, std::span<const NodeId> sinks);

 private:
  struct Arc {
    std::int32_t to;
    std::int32_t rev;  // index of the reverse arc in arcs_[to]
    std::int64_t cap;
  };

  void AddArc(std::int32_t from, std::int32_t to, std::int64_t cap);
  bool BuildLevels(std::int32_t s, std::int32_t t);
  std::int64_t Augment(std::int32_t node, std::int32_t t, std::int64_t limit);

  std::vector<std::vector<Arc>> arcs_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
  std::size_t base_node_count_;  // nodes of the original graph
};

// Convenience: min cut (in links, each counting `edge_capacity`) separating
// the two server sets.
std::int64_t MinCutBetween(const Graph& graph, std::span<const NodeId> side_a,
                           std::span<const NodeId> side_b,
                           std::int64_t edge_capacity = 1,
                           const FailureSet* failures = nullptr);

}  // namespace dcn::graph
