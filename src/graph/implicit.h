// Compile-time graph concept for traversals that never materialize edges.
//
// The cube topologies' neighbor relations are pure address arithmetic, so a
// BFS frontier is all the state a sweep really needs — the O(E) adjacency
// arrays a CsrView carries exist only to cache what a few divisions recompute.
// TraversalGraph names the surface the traversal kernels actually consume:
// node/server counts, an O(1) per-node degree bound, and an allocation-free
// `ForEachNeighbor(node, fn)` enumeration. CsrView models it (backed by its
// packed arrays); topo::ImplicitCube models it (backed by digit algebra), and
// both enumerate neighbors in the SAME order — the materialized builder's
// insertion order — so every traversal result is bit-identical across the two
// representations (pinned by tests/test_implicit.cc).
//
// Determinism contract: a model's ForEachNeighbor must be a pure function of
// (instance, node) with a fixed enumeration order. Kernels add no ordering of
// their own beyond that and the deterministic parallel merge discipline
// (common/parallel.h), so results are independent of DCN_THREADS and of
// whether the graph was ever built.
//
// Failure overlays: implicit graphs have no EdgeIds, so only node failures
// apply — kernels taking a FailureSet through this concept require
// DeadEdgeCount() == 0. Edge-failure sweeps stay on the CsrView overloads
// (bfs.h / msbfs.h), which HasAdjacencySpans lets generic code detect.
#pragma once

#include <concepts>
#include <cstddef>
#include <span>
#include <vector>

#include "common/error.h"
#include "graph/graph.h"
#include "graph/workspace.h"

namespace dcn::graph {

namespace implicit_detail {

// Concept probe for ForEachNeighbor: a named functor rather than a lambda
// (lambdas inside requires-expressions are brittle across compilers).
struct NeighborProbe {
  void operator()(NodeId) const {}
};

}  // namespace implicit_detail

// The surface a traversal kernel needs; O(1) state per call, no edge lists.
template <typename G>
concept TraversalGraph =
    requires(const G& g, NodeId node, std::size_t i,
             implicit_detail::NeighborProbe probe) {
      { g.NodeCount() } -> std::convertible_to<std::size_t>;
      { g.ServerCount() } -> std::convertible_to<std::size_t>;
      { g.ServerIdAt(i) } -> std::convertible_to<NodeId>;
      { g.IsServer(node) } -> std::convertible_to<bool>;
      { g.DegreeBound() } -> std::convertible_to<std::size_t>;
      g.ForEachNeighbor(node, probe);
    };

// Refinement for materialized views: per-edge ids exist (so edge-failure
// overlays work) and neighbors are addressable as flat spans.
template <typename G>
concept HasAdjacencySpans =
    TraversalGraph<G> && requires(const G& g, NodeId node) {
      { g.AdjacentNodes(node) } -> std::convertible_to<std::span<const NodeId>>;
      { g.Neighbors(node) } -> std::convertible_to<std::span<const HalfEdge>>;
    };

// Per-source BFS over any TraversalGraph — the generic twin of the CsrView
// overload in bfs.h (which stays the exact-match overload for CsrView
// callers and also handles edge failures). Same contract: distances land in
// `ws`, returns the reached count, ws.VisitOrder() lists reached nodes in
// settle order. With `failures`, only node failures are honored (see above).
template <TraversalGraph G>
std::size_t BfsDistances(const G& g, NodeId src, TraversalWorkspace& ws,
                         const FailureSet* failures = nullptr) {
  DCN_REQUIRE(src >= 0 && static_cast<std::size_t>(src) < g.NodeCount(),
              "BFS source out of range");
  ws.Begin(g.NodeCount());
  if (failures != nullptr) {
    DCN_REQUIRE(failures->DeadEdgeCount() == 0,
                "implicit graphs have no edge ids; only node failures apply");
    if (failures->NodeDead(src)) return 0;
  }
  std::vector<NodeId>& queue = ws.Frontier();
  ws.Settle(src, 0);
  queue.push_back(src);
  // Level-tracked distance-only sweep, mirroring the CsrView healthy path:
  // the queue is level-ordered, so the boundary index replaces a distance
  // read per dequeued node.
  int next = 1;
  std::size_t level_end = queue.size();
  for (std::size_t head = 0; head < queue.size(); ++head) {
    if (head == level_end) {
      ++next;
      level_end = queue.size();
    }
    g.ForEachNeighbor(queue[head], [&](const NodeId to) {
      if (failures != nullptr && failures->NodeDead(to)) return;
      if (ws.Settle(to, next)) queue.push_back(to);
    });
  }
  return queue.size();
}

}  // namespace dcn::graph
