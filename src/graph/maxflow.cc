#include "graph/maxflow.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/error.h"

namespace dcn::graph {

namespace {
constexpr std::int64_t kInfinity = std::numeric_limits<std::int64_t>::max() / 4;
}  // namespace

MaxFlowSolver::MaxFlowSolver(const Graph& graph, std::int64_t edge_capacity,
                             const FailureSet* failures) {
  DCN_REQUIRE(edge_capacity > 0, "edge capacity must be positive");
  base_node_count_ = graph.NodeCount();
  // Two extra nodes reserved for the super source / super sink.
  arcs_.resize(base_node_count_ + 2);
  for (EdgeId edge = 0; static_cast<std::size_t>(edge) < graph.EdgeCount(); ++edge) {
    if (failures != nullptr && failures->EdgeDead(edge)) continue;
    const auto [u, v] = graph.Endpoints(edge);
    if (failures != nullptr && (failures->NodeDead(u) || failures->NodeDead(v))) {
      continue;
    }
    // Undirected edge: one arc each way, each with an explicit residual twin.
    AddArc(u, v, edge_capacity);
    AddArc(v, u, edge_capacity);
  }
}

void MaxFlowSolver::AddArc(std::int32_t from, std::int32_t to, std::int64_t cap) {
  arcs_[from].push_back(Arc{to, static_cast<std::int32_t>(arcs_[to].size()), cap});
  arcs_[to].push_back(
      Arc{from, static_cast<std::int32_t>(arcs_[from].size()) - 1, 0});
}

bool MaxFlowSolver::BuildLevels(std::int32_t s, std::int32_t t) {
  level_.assign(arcs_.size(), -1);
  std::deque<std::int32_t> queue;
  level_[s] = 0;
  queue.push_back(s);
  while (!queue.empty()) {
    const std::int32_t node = queue.front();
    queue.pop_front();
    for (const Arc& arc : arcs_[node]) {
      if (arc.cap > 0 && level_[arc.to] < 0) {
        level_[arc.to] = level_[node] + 1;
        queue.push_back(arc.to);
      }
    }
  }
  return level_[t] >= 0;
}

std::int64_t MaxFlowSolver::Augment(std::int32_t node, std::int32_t t,
                                    std::int64_t limit) {
  if (node == t) return limit;
  for (std::size_t& i = iter_[node]; i < arcs_[node].size(); ++i) {
    Arc& arc = arcs_[node][i];
    if (arc.cap <= 0 || level_[arc.to] != level_[node] + 1) continue;
    const std::int64_t pushed = Augment(arc.to, t, std::min(limit, arc.cap));
    if (pushed > 0) {
      arc.cap -= pushed;
      arcs_[arc.to][arc.rev].cap += pushed;
      return pushed;
    }
  }
  return 0;
}

std::int64_t MaxFlowSolver::Solve(std::span<const NodeId> sources,
                                  std::span<const NodeId> sinks) {
  DCN_REQUIRE(!sources.empty() && !sinks.empty(),
              "max flow needs non-empty source and sink sets");
  const auto s = static_cast<std::int32_t>(base_node_count_);
  const auto t = static_cast<std::int32_t>(base_node_count_ + 1);
  // Drop any arcs left over from a previous Solve (super-node attachments and
  // accumulated flow): rebuild residual capacities from scratch is cheaper to
  // reason about than undo, so we simply require one Solve per solver when
  // exactness matters. To keep the API forgiving we rebuild attachments and
  // reset only if the super nodes were used before.
  DCN_REQUIRE(arcs_[s].empty() && arcs_[t].empty(),
              "MaxFlowSolver::Solve may be called once per solver instance");

  std::vector<bool> is_sink(arcs_.size(), false);
  for (NodeId sink : sinks) {
    DCN_REQUIRE(sink >= 0 && static_cast<std::size_t>(sink) < base_node_count_,
                "sink node out of range");
    is_sink[sink] = true;
  }
  for (NodeId source : sources) {
    DCN_REQUIRE(source >= 0 && static_cast<std::size_t>(source) < base_node_count_,
                "source node out of range");
    DCN_REQUIRE(!is_sink[source], "source and sink sets must be disjoint");
    AddArc(s, static_cast<std::int32_t>(source), kInfinity);
  }
  for (NodeId sink : sinks) {
    AddArc(static_cast<std::int32_t>(sink), t, kInfinity);
  }

  std::int64_t flow = 0;
  while (BuildLevels(s, t)) {
    iter_.assign(arcs_.size(), 0);
    while (true) {
      const std::int64_t pushed = Augment(s, t, kInfinity);
      if (pushed == 0) break;
      flow += pushed;
    }
  }
  return flow;
}

std::int64_t MinCutBetween(const Graph& graph, std::span<const NodeId> side_a,
                           std::span<const NodeId> side_b,
                           std::int64_t edge_capacity, const FailureSet* failures) {
  MaxFlowSolver solver{graph, edge_capacity, failures};
  return solver.Solve(side_a, side_b);
}

}  // namespace dcn::graph
