#include "graph/maxflow.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "obs/obs.h"

namespace dcn::graph {

namespace {
constexpr std::int64_t kInfinity = std::numeric_limits<std::int64_t>::max() / 4;
}  // namespace

MaxFlowSolver::MaxFlowSolver(const Graph& graph, std::int64_t edge_capacity,
                             const FailureSet* failures)
    : edge_capacity_(edge_capacity) {
  DCN_REQUIRE(edge_capacity > 0, "edge capacity must be positive");
  base_node_count_ = graph.NodeCount();
  live_edges_.reserve(graph.EdgeCount());
  for (EdgeId edge = 0; static_cast<std::size_t>(edge) < graph.EdgeCount();
       ++edge) {
    if (failures != nullptr && failures->EdgeDead(edge)) continue;
    const auto [u, v] = graph.Endpoints(edge);
    if (failures != nullptr && (failures->NodeDead(u) || failures->NodeDead(v))) {
      continue;
    }
    live_edges_.emplace_back(u, v);
  }
}

void MaxFlowSolver::AddArcPair(std::int32_t from, std::int32_t to,
                               std::int64_t cap) {
  const std::int32_t fwd = cursor_[static_cast<std::size_t>(from)]++;
  const std::int32_t res = cursor_[static_cast<std::size_t>(to)]++;
  to_[static_cast<std::size_t>(fwd)] = to;
  rev_[static_cast<std::size_t>(fwd)] = res;
  cap_[static_cast<std::size_t>(fwd)] = cap;
  to_[static_cast<std::size_t>(res)] = from;
  rev_[static_cast<std::size_t>(res)] = fwd;
  cap_[static_cast<std::size_t>(res)] = 0;
}

bool MaxFlowSolver::BuildLevels(std::int32_t s, std::int32_t t) {
  level_.assign(offset_.size() - 1, -1);
  queue_.clear();
  level_[static_cast<std::size_t>(s)] = 0;
  queue_.push_back(s);
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const std::int32_t node = queue_[head];
    for (std::int32_t a = offset_[static_cast<std::size_t>(node)];
         a < offset_[static_cast<std::size_t>(node) + 1]; ++a) {
      const std::int32_t next = to_[static_cast<std::size_t>(a)];
      if (cap_[static_cast<std::size_t>(a)] > 0 &&
          level_[static_cast<std::size_t>(next)] < 0) {
        level_[static_cast<std::size_t>(next)] =
            level_[static_cast<std::size_t>(node)] + 1;
        queue_.push_back(next);
      }
    }
  }
  return level_[static_cast<std::size_t>(t)] >= 0;
}

std::int64_t MaxFlowSolver::Augment(std::int32_t node, std::int32_t t,
                                    std::int64_t limit) {
  if (node == t) return limit;
  for (std::int32_t& i = iter_[static_cast<std::size_t>(node)];
       i < offset_[static_cast<std::size_t>(node) + 1]; ++i) {
    const auto a = static_cast<std::size_t>(i);
    const std::int32_t next = to_[a];
    if (cap_[a] <= 0 || level_[static_cast<std::size_t>(next)] !=
                            level_[static_cast<std::size_t>(node)] + 1) {
      continue;
    }
    const std::int64_t pushed = Augment(next, t, std::min(limit, cap_[a]));
    if (pushed > 0) {
      cap_[a] -= pushed;
      cap_[static_cast<std::size_t>(rev_[a])] += pushed;
      return pushed;
    }
  }
  return 0;
}

std::int64_t MaxFlowSolver::Solve(std::span<const NodeId> sources,
                                  std::span<const NodeId> sinks) {
  DCN_REQUIRE(!sources.empty() && !sinks.empty(),
              "max flow needs non-empty source and sink sets");
  DCN_REQUIRE(!solved_,
              "MaxFlowSolver::Solve needs Reset() between solves: the arc "
              "capacities still hold the previous residual network");
  solved_ = true;

  const std::size_t nodes = base_node_count_ + 2;
  const auto s = static_cast<std::int32_t>(base_node_count_);
  const auto t = static_cast<std::int32_t>(base_node_count_ + 1);

  std::vector<bool> is_sink(nodes, false);
  for (NodeId sink : sinks) {
    DCN_REQUIRE(sink >= 0 && static_cast<std::size_t>(sink) < base_node_count_,
                "sink node out of range");
    is_sink[static_cast<std::size_t>(sink)] = true;
  }
  for (NodeId source : sources) {
    DCN_REQUIRE(source >= 0 && static_cast<std::size_t>(source) < base_node_count_,
                "source node out of range");
    DCN_REQUIRE(!is_sink[static_cast<std::size_t>(source)],
                "source and sink sets must be disjoint");
  }

  // Size the flat arc arrays: each live edge contributes two arcs to each
  // endpoint (one direction + its residual twin), each attachment one arc to
  // each of its endpoints.
  offset_.assign(nodes + 1, 0);
  for (const auto& [u, v] : live_edges_) {
    offset_[static_cast<std::size_t>(u) + 1] += 2;
    offset_[static_cast<std::size_t>(v) + 1] += 2;
  }
  offset_[static_cast<std::size_t>(s) + 1] +=
      static_cast<std::int32_t>(sources.size());
  offset_[static_cast<std::size_t>(t) + 1] +=
      static_cast<std::int32_t>(sinks.size());
  for (const NodeId source : sources) {
    offset_[static_cast<std::size_t>(source) + 1] += 1;
  }
  for (const NodeId sink : sinks) {
    offset_[static_cast<std::size_t>(sink) + 1] += 1;
  }
  for (std::size_t node = 0; node < nodes; ++node) {
    offset_[node + 1] += offset_[node];
  }
  const auto arcs = static_cast<std::size_t>(offset_[nodes]);
  cursor_.assign(offset_.begin(), offset_.end() - 1);
  to_.resize(arcs);
  rev_.resize(arcs);
  cap_.resize(arcs);
  for (const auto& [u, v] : live_edges_) {
    // Undirected edge: one arc each way, each with an explicit residual twin.
    AddArcPair(u, v, edge_capacity_);
    AddArcPair(v, u, edge_capacity_);
  }
  // Source/sink attachment arcs are effectively infinite, so the answer is
  // the min link cut.
  for (const NodeId source : sources) {
    AddArcPair(s, static_cast<std::int32_t>(source), kInfinity);
  }
  for (const NodeId sink : sinks) {
    AddArcPair(static_cast<std::int32_t>(sink), t, kInfinity);
  }

  std::int64_t flow = 0;
  std::uint64_t obs_phases = 0;
  std::uint64_t obs_paths = 0;
  {
    OBS_SPAN("dinic/solve");
    while (BuildLevels(s, t)) {
      ++obs_phases;
      iter_.assign(offset_.begin(), offset_.end() - 1);
      while (true) {
        const std::int64_t pushed = Augment(s, t, kInfinity);
        if (pushed == 0) break;
        ++obs_paths;
        flow += pushed;
      }
    }
  }
  // Phase and augmenting-path counts are exact properties of the instance —
  // the observables that explain why one cut is slower than another.
  static obs::Counter& c_solves = obs::GetCounter("dinic/solves");
  static obs::Counter& c_phases = obs::GetCounter("dinic/phases");
  static obs::Counter& c_paths = obs::GetCounter("dinic/augmenting_paths");
  static obs::Histogram& h_phases = obs::GetHistogram("dinic/phases_per_solve");
  c_solves.Add(1);
  c_phases.Add(obs_phases);
  c_paths.Add(obs_paths);
  h_phases.Add(static_cast<std::int64_t>(obs_phases));
  return flow;
}

void MaxFlowSolver::Reset() { solved_ = false; }

void MaxFlowSolver::MinCutSourceSide(std::vector<char>& side) const {
  DCN_REQUIRE(solved_, "MinCutSourceSide needs a completed Solve");
  // Solve's phase loop exits on a failed level build, so level_ already holds
  // BFS reachability from the super source over positive-residual arcs — the
  // canonical source side of the min cut, with no extra traversal.
  side.assign(base_node_count_, 0);
  for (std::size_t node = 0; node < base_node_count_; ++node) {
    if (level_[node] >= 0) side[node] = 1;
  }
}

std::int64_t MinCutBetween(const Graph& graph, std::span<const NodeId> side_a,
                           std::span<const NodeId> side_b,
                           std::int64_t edge_capacity, const FailureSet* failures) {
  MaxFlowSolver solver{graph, edge_capacity, failures};
  return solver.Solve(side_a, side_b);
}

}  // namespace dcn::graph
