// Connected-component labeling and incremental repair under failures.
//
// The Monte-Carlo resilience metrics only ever ask "does src reach dst?" for
// sampled pairs. A BFS per source answers that in O(sources · (V+E)); one
// component labeling answers it for EVERY pair in O(V+E): reachable iff same
// component id. ComponentForest goes further for the fault-trial loop, where
// each trial deletes a handful of nodes/edges from the same intact graph: it
// keeps the intact BFS spanning forest and, per trial, re-levels only the
// affected cone (descendants of the kills) instead of recomputing from
// scratch — the rest of the graph provably keeps its intact labels.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "graph/csr.h"
#include "graph/graph.h"
#include "graph/workspace.h"

namespace dcn::graph {

// Label of dead (or not-yet-labeled) nodes.
inline constexpr std::int32_t kDeadComponent = -1;

// A partition of the live nodes into connected components. `comp` holds one
// id per node (kDeadComponent for dead nodes); `count` is an upper bound on
// ids in use (after ComponentForest::Repair some intact ids may have lost
// all members). `queue` is internal BFS scratch, reused across labelings.
struct ComponentSet {
  std::vector<std::int32_t> comp;
  std::size_t count = 0;
  std::vector<NodeId> queue;

  std::size_t NodeCount() const { return comp.size(); }
  std::int32_t ComponentOf(NodeId node) const {
    return comp[static_cast<std::size_t>(node)];
  }
  // True iff both nodes are live and connected — the reachability predicate
  // the resilience metrics sample.
  bool SameComponent(NodeId a, NodeId b) const {
    return comp[static_cast<std::size_t>(a)] >= 0 &&
           comp[static_cast<std::size_t>(a)] ==
               comp[static_cast<std::size_t>(b)];
  }
};

// Labels the connected components of `csr` minus `failures` (node and edge
// kills). Ids are canonical — ascending in each component's lowest node id —
// so the labeling is a pure function of the graph and failure set.
void LabelComponents(const CsrView& csr, const FailureSet* failures,
                     ComponentSet& out);

// Generic overload for any TraversalGraph (graph/implicit.h). Graphs without
// adjacency spans carry no edge ids, so `failures` must be node-only — the
// same contract as the implicit BfsDistances.
template <typename G>
void LabelComponents(const G& g, const FailureSet* failures,
                     ComponentSet& out) {
  if (failures != nullptr) {
    DCN_REQUIRE(failures->DeadEdgeCount() == 0,
                "graphs without adjacency spans cannot honor edge failures");
  }
  const std::size_t nodes = g.NodeCount();
  out.comp.assign(nodes, kDeadComponent);
  out.count = 0;
  for (NodeId seed = 0; static_cast<std::size_t>(seed) < nodes; ++seed) {
    if (out.comp[static_cast<std::size_t>(seed)] != kDeadComponent) continue;
    if (failures != nullptr && failures->NodeDead(seed)) continue;
    const auto id = static_cast<std::int32_t>(out.count++);
    out.comp[static_cast<std::size_t>(seed)] = id;
    out.queue.clear();
    out.queue.push_back(seed);
    for (std::size_t head = 0; head < out.queue.size(); ++head) {
      g.ForEachNeighbor(out.queue[head], [&](NodeId next) {
        if (out.comp[static_cast<std::size_t>(next)] != kDeadComponent) return;
        if (failures != nullptr && failures->NodeDead(next)) return;
        out.comp[static_cast<std::size_t>(next)] = id;
        out.queue.push_back(next);
      });
    }
  }
}

// Per-trial scratch for ComponentForest::Repair; create one per thread and
// reuse it — steady state allocates nothing.
struct ComponentRepairScratch {
  EpochMarks in_cone;
  std::vector<NodeId> cone;
  std::vector<NodeId> queue;
};

// Intact BFS spanning forest of a CsrView plus its component labeling, built
// once; Repair() then derives the post-failure components of any small
// kill set by re-leveling only the affected cone. Thread-safe: Repair is
// const, all mutation goes through the caller's scratch/output.
class ComponentForest {
 public:
  explicit ComponentForest(const CsrView& csr);

  // The failure-free labeling (canonical ids, as LabelComponents).
  const ComponentSet& Intact() const { return intact_; }

  // Components of (csr − failures). `dead_nodes`/`dead_edges` must enumerate
  // exactly the kills recorded in `failures`. Nodes outside the cone —
  // descendants of dead nodes and of tree edges that died — keep their
  // intact ids (their tree path to the root is untouched, so they provably
  // stay root-connected); cone nodes re-attach to an adjacent labeled region
  // or, if fully split off, receive fresh ids >= Intact().count. The result
  // is partition-equal (not id-equal) to a from-scratch LabelComponents.
  // Returns the cone size — the number of re-leveled nodes.
  std::size_t Repair(std::span<const NodeId> dead_nodes,
                     std::span<const EdgeId> dead_edges,
                     const FailureSet& failures, ComponentRepairScratch& scratch,
                     ComponentSet& out) const;

 private:
  const CsrView* csr_;
  ComponentSet intact_;
  std::vector<NodeId> parent_;       // kInvalidNode at forest roots
  std::vector<EdgeId> parent_edge_;  // tree edge to parent, kInvalidEdge at roots
  std::vector<std::int32_t> child_offset_;  // children in CSR layout
  std::vector<NodeId> child_;
};

}  // namespace dcn::graph
