// Flat compressed-sparse-row snapshot of a Graph.
//
// The mutable Graph stores adjacency as vector<vector<HalfEdge>>: friendly to
// incremental construction, hostile to traversal (one heap block per node,
// pointer chase per hop). Every headline metric — diameter/ASPL sweeps,
// Dinic cuts, resilience trials, the simulators — bottoms out in BFS-style
// walks over that structure, so the hot paths run instead over this immutable
// view: one contiguous `targets` array indexed by per-node `offsets`, plus
// packed node-kind / server-index side arrays. Neighbor order is exactly the
// Graph's insertion order, so traversals over the view visit nodes and pick
// parallel links in the same order as traversals over the Graph — results are
// bit-identical, only faster.
//
// Obtain the view with Graph::Csr(); it is built once per topology and cached
// until the next mutation. Accessors skip range checks (the Graph-based
// wrappers validate at the boundary); all ids must be in range.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace dcn::graph {

class CsrView {
 public:
  explicit CsrView(const Graph& graph);

  std::size_t NodeCount() const { return kinds_.size(); }
  std::size_t EdgeCount() const { return endpoints_.size(); }

  std::span<const HalfEdge> Neighbors(NodeId node) const {
    return {targets_.data() + offsets_[node],
            targets_.data() + offsets_[node + 1]};
  }
  // Structure-of-arrays twin of Neighbors(): just the target node ids, in the
  // same order. Distance-only sweeps that never look at edge ids scan half
  // the bytes this way.
  std::span<const NodeId> AdjacentNodes(NodeId node) const {
    return {adjacent_.data() + offsets_[node],
            adjacent_.data() + offsets_[node + 1]};
  }
  std::size_t Degree(NodeId node) const {
    return static_cast<std::size_t>(offsets_[node + 1] - offsets_[node]);
  }
  // Maximum degree over all nodes — the TraversalGraph concept's per-node
  // work bound (graph/implicit.h).
  std::size_t DegreeBound() const { return degree_bound_; }
  // Generic neighbor enumeration, the shape implicit topologies share
  // (graph/implicit.h); inlines to the same loop as AdjacentNodes().
  template <typename Fn>
  void ForEachNeighbor(NodeId node, Fn&& fn) const {
    for (const NodeId to : AdjacentNodes(node)) fn(to);
  }

  NodeKind KindOf(NodeId node) const { return kinds_[node]; }
  bool IsServer(NodeId node) const { return kinds_[node] == NodeKind::kServer; }
  bool IsSwitch(NodeId node) const { return kinds_[node] == NodeKind::kSwitch; }

  std::pair<NodeId, NodeId> Endpoints(EdgeId edge) const {
    return endpoints_[edge];
  }
  NodeId OtherEnd(EdgeId edge, NodeId node) const {
    const auto [u, v] = endpoints_[edge];
    return node == u ? v : u;
  }

  std::size_t ServerCount() const { return servers_.size(); }
  std::span<const NodeId> Servers() const { return servers_; }
  // Servers()[i] — the indexed accessor the TraversalGraph concept uses so
  // implicit topologies (whose server ids are arithmetic) can match it.
  NodeId ServerIdAt(std::size_t i) const { return servers_[i]; }
  // Dense rank of `node` among servers (its position in Servers()), or -1 for
  // switches. Lets per-server accumulators use flat arrays instead of maps.
  std::int32_t ServerIndexOf(NodeId node) const { return server_index_[node]; }

  // Same contract as Graph::FindEdge: scans the smaller endpoint's neighbor
  // slice, so the cost is O(min degree); returns the lowest-id link between
  // the pair (adjacency lists are append-only in edge-id order), or
  // kInvalidEdge.
  EdgeId FindEdge(NodeId u, NodeId v) const;
  bool Adjacent(NodeId u, NodeId v) const {
    return FindEdge(u, v) != kInvalidEdge;
  }

 private:
  std::vector<std::int32_t> offsets_;  // NodeCount()+1 entries into targets_
  std::vector<HalfEdge> targets_;      // all half-edges, grouped by source
  std::vector<NodeId> adjacent_;       // targets_[i].to, for edge-blind sweeps
  std::vector<NodeKind> kinds_;
  std::vector<std::pair<NodeId, NodeId>> endpoints_;
  std::vector<NodeId> servers_;
  std::vector<std::int32_t> server_index_;
  std::size_t degree_bound_ = 0;
};

}  // namespace dcn::graph
