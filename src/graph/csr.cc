#include "graph/csr.h"

#include <algorithm>

namespace dcn::graph {

CsrView::CsrView(const Graph& graph) {
  const std::size_t nodes = graph.NodeCount();
  const std::size_t edges = graph.EdgeCount();

  kinds_.resize(nodes);
  server_index_.assign(nodes, -1);
  servers_.reserve(graph.ServerCount());
  for (NodeId node = 0; static_cast<std::size_t>(node) < nodes; ++node) {
    kinds_[node] = graph.KindOf(node);
  }
  for (const NodeId server : graph.Servers()) {
    server_index_[server] = static_cast<std::int32_t>(servers_.size());
    servers_.push_back(server);
  }

  endpoints_.reserve(edges);
  for (EdgeId edge = 0; static_cast<std::size_t>(edge) < edges; ++edge) {
    endpoints_.push_back(graph.Endpoints(edge));
  }

  // Pack the per-node adjacency vectors back to back, preserving each node's
  // insertion order so CSR traversals replay Graph traversals exactly.
  offsets_.resize(nodes + 1);
  offsets_[0] = 0;
  for (NodeId node = 0; static_cast<std::size_t>(node) < nodes; ++node) {
    offsets_[node + 1] =
        offsets_[node] + static_cast<std::int32_t>(graph.Degree(node));
    degree_bound_ = std::max(degree_bound_, graph.Degree(node));
  }
  targets_.resize(static_cast<std::size_t>(offsets_[nodes]));
  adjacent_.resize(targets_.size());
  for (NodeId node = 0; static_cast<std::size_t>(node) < nodes; ++node) {
    std::int32_t at = offsets_[node];
    for (const HalfEdge& half : graph.Neighbors(node)) {
      adjacent_[at] = half.to;
      targets_[at++] = half;
    }
  }
}

EdgeId CsrView::FindEdge(NodeId u, NodeId v) const {
  const NodeId from = Degree(u) <= Degree(v) ? u : v;
  const NodeId to = from == u ? v : u;
  for (const HalfEdge& half : Neighbors(from)) {
    if (half.to == to) return half.edge;
  }
  return kInvalidEdge;
}

}  // namespace dcn::graph
