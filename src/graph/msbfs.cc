#include "graph/msbfs.h"

namespace dcn::graph {

// The CsrView signatures forward to the TraversalGraph templates (msbfs.h);
// keeping these non-template definitions pins the overloads existing callers
// resolve to and keeps one instantiation of the CsrView sweeps in this TU.

std::vector<int> MultiSourceDistances(const CsrView& csr,
                                      std::span<const NodeId> sources,
                                      const FailureSet* failures) {
  return MultiSourceDistances<CsrView>(csr, sources, failures);
}

std::vector<int> ServerEccentricities(const CsrView& csr,
                                      std::span<const NodeId> sources,
                                      const FailureSet* failures) {
  return ServerEccentricities<CsrView>(csr, sources, failures);
}

AllPairsSweepStats AllPairsDistanceSweep(const CsrView& csr) {
  return AllPairsDistanceSweep<CsrView>(csr);
}

}  // namespace dcn::graph
