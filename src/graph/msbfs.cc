#include "graph/msbfs.h"

#include <array>
#include <limits>

#include "common/parallel.h"

namespace dcn::graph {

namespace {

// Applies `fn(lane)` to every set bit of `word`.
template <typename Fn>
void ForEachLane(std::uint64_t word, Fn&& fn) {
  while (word != 0) {
    fn(static_cast<std::size_t>(std::countr_zero(word)));
    word &= word - 1;
  }
}

}  // namespace

std::vector<int> MultiSourceDistances(const CsrView& csr,
                                      std::span<const NodeId> sources,
                                      const FailureSet* failures) {
  const std::size_t nodes = csr.NodeCount();
  std::vector<int> dist(sources.size() * nodes, kUnreachable);
  MsBfsScope ws;
  for (std::size_t base = 0; base < sources.size(); base += kMsBfsLanes) {
    const auto block =
        sources.subspan(base, std::min(kMsBfsLanes, sources.size() - base));
    MultiSourceBfs(
        csr, block, *ws,
        [&](int level, NodeId node, std::uint64_t bits) {
          ForEachLane(bits, [&](std::size_t lane) {
            dist[(base + lane) * nodes + static_cast<std::size_t>(node)] =
                level;
          });
        },
        failures);
  }
  return dist;
}

std::vector<int> ServerEccentricities(const CsrView& csr,
                                      std::span<const NodeId> sources,
                                      const FailureSet* failures) {
  std::vector<int> ecc(sources.size(), kUnreachable);
  MsBfsScope ws;
  for (std::size_t base = 0; base < sources.size(); base += kMsBfsLanes) {
    const auto block =
        sources.subspan(base, std::min(kMsBfsLanes, sources.size() - base));
    // Rather than touching per-lane state for every set bit, OR each level's
    // server hits into one word and flush it when the level advances: the
    // last level a lane's bit appears in is its eccentricity.
    int current_level = 0;
    std::uint64_t level_bits = 0;
    const auto flush = [&] {
      ForEachLane(level_bits,
                  [&](std::size_t lane) { ecc[base + lane] = current_level; });
    };
    MultiSourceBfs(
        csr, block, *ws,
        [&](int level, NodeId node, std::uint64_t bits) {
          if (!csr.IsServer(node)) return;
          if (level != current_level) {
            flush();
            current_level = level;
            level_bits = 0;
          }
          level_bits |= bits;
        },
        failures);
    flush();
  }
  return ecc;
}

AllPairsSweepStats AllPairsDistanceSweep(const CsrView& csr) {
  const auto servers = csr.Servers();
  AllPairsSweepStats stats;
  if (servers.empty()) return stats;
  const std::size_t blocks =
      (servers.size() + kMsBfsLanes - 1) / kMsBfsLanes;

  // Everything in a partial is an exact integer, so the fixed block split +
  // ascending merge order make the reduction bit-identical for any thread
  // count — and identical to the per-source sweep it replaced.
  struct Partial {
    std::int64_t total = 0;       // sum of distances over reached pairs
    std::uint64_t reached = 0;    // (source, server) pairs incl. source itself
    std::uint64_t lanes = 0;      // sources processed (to discount self pairs)
    int diameter = 0;
    int radius = std::numeric_limits<int>::max();
    bool connected = true;
    std::vector<std::uint64_t> at_distance;
  };
  Partial merged = ParallelMapReduce(
      blocks, /*chunk=*/1, Partial{},
      [&](std::size_t begin, std::size_t end) {
        Partial partial;
        MsBfsScope ws;
        for (std::size_t b = begin; b < end; ++b) {
          const auto block = servers.subspan(
              b * kMsBfsLanes,
              std::min(kMsBfsLanes, servers.size() - b * kMsBfsLanes));
          partial.lanes += block.size();

          // Per-lane eccentricity via the level-word flush trick (see
          // ServerEccentricities). The per-visit work is kept to an OR and a
          // popcount into register accumulators; everything touching memory
          // (histogram bucket, totals, diameter) happens once per level at
          // the flush.
          std::array<int, kMsBfsLanes> ecc{};
          int current_level = 0;
          std::uint64_t level_bits = 0;
          std::uint64_t level_count = 0;
          const auto flush = [&] {
            if (level_count == 0) return;
            ForEachLane(level_bits,
                        [&](std::size_t lane) { ecc[lane] = current_level; });
            const auto d = static_cast<std::size_t>(current_level);
            if (partial.at_distance.size() <= d) {
              partial.at_distance.resize(d + 1, 0);
            }
            partial.at_distance[d] += level_count;
            partial.total += static_cast<std::int64_t>(current_level) *
                             static_cast<std::int64_t>(level_count);
            partial.reached += level_count;
            partial.diameter = std::max(partial.diameter, current_level);
          };
          MultiSourceBfs(csr, block, *ws,
                         [&](int level, NodeId node, std::uint64_t bits) {
                           if (!csr.IsServer(node)) return;
                           if (level != current_level) {
                             flush();
                             current_level = level;
                             level_bits = 0;
                             level_count = 0;
                           }
                           level_bits |= bits;
                           level_count += static_cast<std::uint64_t>(
                               std::popcount(bits));
                         });
          flush();
          for (std::size_t lane = 0; lane < block.size(); ++lane) {
            partial.radius = std::min(partial.radius, ecc[lane]);
          }
          // Connectivity: every lane of this block must have reached every
          // server — one word compare per server.
          const std::uint64_t mask = MsBfsLaneMask(block.size());
          for (const NodeId server : servers) {
            if ((ws->SeenWord(server) & mask) != mask) {
              partial.connected = false;
              break;
            }
          }
        }
        return partial;
      },
      [](Partial acc, Partial partial) {
        acc.total += partial.total;
        acc.reached += partial.reached;
        acc.lanes += partial.lanes;
        acc.diameter = std::max(acc.diameter, partial.diameter);
        acc.radius = std::min(acc.radius, partial.radius);
        acc.connected = acc.connected && partial.connected;
        if (acc.at_distance.size() < partial.at_distance.size()) {
          acc.at_distance.resize(partial.at_distance.size(), 0);
        }
        for (std::size_t d = 0; d < partial.at_distance.size(); ++d) {
          acc.at_distance[d] += partial.at_distance[d];
        }
        return acc;
      });

  stats.distance_total = merged.total;
  stats.pairs = merged.reached - merged.lanes;  // drop the distance-0 selves
  stats.diameter = merged.diameter;
  stats.radius =
      merged.radius == std::numeric_limits<int>::max() ? 0 : merged.radius;
  stats.connected = merged.connected;
  stats.pairs_at_distance = std::move(merged.at_distance);
  if (!stats.pairs_at_distance.empty()) {
    // Level 0 counted each source reaching itself; the histogram is over
    // ordered pairs, where distance 0 cannot occur.
    stats.pairs_at_distance[0] -= merged.lanes;
  }
  return stats;
}

}  // namespace dcn::graph
