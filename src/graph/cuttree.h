// Gomory–Hu cut tree (Gusfield's simplification): all-pairs min cuts of an
// undirected graph from V-1 max-flow solves instead of V²/2. The tree is
// flow-equivalent — for any pair (u, v) the min cut equals the smallest edge
// weight on the unique tree path between them — which is all the pairwise
// connectivity metrics need.
//
// Construction reuses one MaxFlowSolver (Reset() between solves), so the
// live-edge scan over failures happens once, not once per solve. Disconnected
// inputs (dead nodes, partitioned graphs) are handled naturally: the solve
// returns 0 and the tree records a weight-0 edge.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace dcn::graph {

struct CutTree {
  // parent[0] is kInvalidNode (node 0 is the root); cut[n] is the min cut
  // separating n from parent[n] (cut[0] = 0, unused).
  std::vector<NodeId> parent;
  std::vector<std::int64_t> cut;
  std::vector<std::int32_t> depth;

  std::size_t NodeCount() const { return parent.size(); }

  // Exact min cut between u and v (u != v): minimum edge weight on the tree
  // path, found by walking the two nodes up to their meeting point. O(depth).
  std::int64_t MinCut(NodeId u, NodeId v) const;
};

// Builds the cut tree with V-1 Dinic solves. `edge_capacity` applies
// uniformly to every link; dead nodes/links from `failures` are excluded
// (a dead node becomes an isolated cut-0 leaf). Deterministic: node order
// fixes the solve sequence, so the tree is identical at any thread count.
CutTree BuildCutTree(const Graph& graph, std::int64_t edge_capacity = 1,
                     const FailureSet* failures = nullptr);

}  // namespace dcn::graph
