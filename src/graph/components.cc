#include "graph/components.h"

namespace dcn::graph {

namespace {
// Interim label during Repair for live cone nodes awaiting re-attachment.
// Distinct from kDeadComponent so dead and pending nodes cannot be confused.
constexpr std::int32_t kPending = -2;
}  // namespace

void LabelComponents(const CsrView& csr, const FailureSet* failures,
                     ComponentSet& out) {
  const std::size_t nodes = csr.NodeCount();
  out.comp.assign(nodes, kDeadComponent);
  out.count = 0;
  for (NodeId seed = 0; static_cast<std::size_t>(seed) < nodes; ++seed) {
    if (out.comp[static_cast<std::size_t>(seed)] != kDeadComponent) continue;
    if (failures != nullptr && failures->NodeDead(seed)) continue;
    const auto id = static_cast<std::int32_t>(out.count++);
    out.comp[static_cast<std::size_t>(seed)] = id;
    out.queue.clear();
    out.queue.push_back(seed);
    for (std::size_t head = 0; head < out.queue.size(); ++head) {
      const NodeId node = out.queue[head];
      if (failures == nullptr) {
        for (const NodeId next : csr.AdjacentNodes(node)) {
          if (out.comp[static_cast<std::size_t>(next)] != kDeadComponent) {
            continue;
          }
          out.comp[static_cast<std::size_t>(next)] = id;
          out.queue.push_back(next);
        }
      } else {
        for (const HalfEdge half : csr.Neighbors(node)) {
          if (!failures->HalfEdgeUsable(half)) continue;
          if (out.comp[static_cast<std::size_t>(half.to)] != kDeadComponent) {
            continue;
          }
          out.comp[static_cast<std::size_t>(half.to)] = id;
          out.queue.push_back(half.to);
        }
      }
    }
  }
}

ComponentForest::ComponentForest(const CsrView& csr) : csr_(&csr) {
  const std::size_t nodes = csr.NodeCount();
  parent_.assign(nodes, kInvalidNode);
  parent_edge_.assign(nodes, kInvalidEdge);
  intact_.comp.assign(nodes, kDeadComponent);
  intact_.count = 0;
  // One BFS per component seed in ascending id order: yields the canonical
  // labeling (identical to LabelComponents with no failures) and the
  // spanning forest in a single pass.
  std::vector<NodeId> queue;
  for (NodeId seed = 0; static_cast<std::size_t>(seed) < nodes; ++seed) {
    if (intact_.comp[static_cast<std::size_t>(seed)] != kDeadComponent) {
      continue;
    }
    const auto id = static_cast<std::int32_t>(intact_.count++);
    intact_.comp[static_cast<std::size_t>(seed)] = id;
    queue.clear();
    queue.push_back(seed);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId node = queue[head];
      for (const HalfEdge half : csr.Neighbors(node)) {
        if (intact_.comp[static_cast<std::size_t>(half.to)] !=
            kDeadComponent) {
          continue;
        }
        intact_.comp[static_cast<std::size_t>(half.to)] = id;
        parent_[static_cast<std::size_t>(half.to)] = node;
        parent_edge_[static_cast<std::size_t>(half.to)] = half.edge;
        queue.push_back(half.to);
      }
    }
  }
  // Children as a CSR (count, prefix-sum, fill) so Repair can expand a cone
  // without touching non-descendant nodes.
  child_offset_.assign(nodes + 1, 0);
  for (std::size_t node = 0; node < nodes; ++node) {
    if (parent_[node] != kInvalidNode) {
      child_offset_[static_cast<std::size_t>(parent_[node]) + 1] += 1;
    }
  }
  for (std::size_t node = 0; node < nodes; ++node) {
    child_offset_[node + 1] += child_offset_[node];
  }
  child_.resize(nodes == 0 ? 0 : static_cast<std::size_t>(child_offset_[nodes]));
  std::vector<std::int32_t> cursor(child_offset_.begin(),
                                   child_offset_.end() - 1);
  for (NodeId node = 0; static_cast<std::size_t>(node) < nodes; ++node) {
    if (parent_[static_cast<std::size_t>(node)] != kInvalidNode) {
      child_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(
              parent_[static_cast<std::size_t>(node)])]++)] = node;
    }
  }
}

std::size_t ComponentForest::Repair(std::span<const NodeId> dead_nodes,
                                    std::span<const EdgeId> dead_edges,
                                    const FailureSet& failures,
                                    ComponentRepairScratch& scratch,
                                    ComponentSet& out) const {
  const CsrView& csr = *csr_;
  const std::size_t nodes = csr.NodeCount();
  out.comp.assign(intact_.comp.begin(), intact_.comp.end());
  out.count = intact_.count;

  // Cone roots: dead nodes, plus the child endpoint of every dead tree edge
  // (a dead non-tree edge cannot change connectivity of the forest).
  scratch.in_cone.Begin(nodes);
  auto& cone = scratch.cone;
  cone.clear();
  for (const NodeId node : dead_nodes) {
    if (scratch.in_cone.Mark(node)) cone.push_back(node);
  }
  for (const EdgeId edge : dead_edges) {
    const auto [u, v] = csr.Endpoints(edge);
    // At most one endpoint has this edge as its parent edge (the child).
    if (parent_edge_[static_cast<std::size_t>(u)] == edge &&
        scratch.in_cone.Mark(u)) {
      cone.push_back(u);
    }
    if (parent_edge_[static_cast<std::size_t>(v)] == edge &&
        scratch.in_cone.Mark(v)) {
      cone.push_back(v);
    }
  }
  // Close under forest descendants: everything whose tree path to its root
  // crosses a kill. Nodes outside this cone keep a fully-live tree path to
  // their root, so their intact label still holds.
  for (std::size_t head = 0; head < cone.size(); ++head) {
    const NodeId node = cone[head];
    for (std::int32_t c = child_offset_[static_cast<std::size_t>(node)];
         c < child_offset_[static_cast<std::size_t>(node) + 1]; ++c) {
      const NodeId child = child_[static_cast<std::size_t>(c)];
      if (scratch.in_cone.Mark(child)) cone.push_back(child);
    }
  }

  for (const NodeId node : cone) {
    out.comp[static_cast<std::size_t>(node)] =
        failures.NodeDead(node) ? kDeadComponent : kPending;
  }

  // Re-attach: seed from cone nodes with a usable edge into already-labeled
  // territory, then flood the label through the pending region. Every >=0
  // label visible here is an intact id, and all labeled neighbors of one
  // pending region agree (they are connected post-failure), so the result is
  // independent of visit order.
  auto& queue = scratch.queue;
  queue.clear();
  for (const NodeId node : cone) {
    if (out.comp[static_cast<std::size_t>(node)] != kPending) continue;
    for (const HalfEdge half : csr.Neighbors(node)) {
      if (!failures.HalfEdgeUsable(half)) continue;
      const std::int32_t label = out.comp[static_cast<std::size_t>(half.to)];
      if (label >= 0) {
        out.comp[static_cast<std::size_t>(node)] = label;
        queue.push_back(node);
        break;
      }
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId node = queue[head];
    const std::int32_t label = out.comp[static_cast<std::size_t>(node)];
    for (const HalfEdge half : csr.Neighbors(node)) {
      if (!failures.HalfEdgeUsable(half)) continue;
      if (out.comp[static_cast<std::size_t>(half.to)] != kPending) continue;
      out.comp[static_cast<std::size_t>(half.to)] = label;
      queue.push_back(half.to);
    }
  }

  // Whatever is still pending was split off entirely: fresh components.
  for (const NodeId seed : cone) {
    if (out.comp[static_cast<std::size_t>(seed)] != kPending) continue;
    const auto id = static_cast<std::int32_t>(out.count++);
    out.comp[static_cast<std::size_t>(seed)] = id;
    queue.clear();
    queue.push_back(seed);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId node = queue[head];
      for (const HalfEdge half : csr.Neighbors(node)) {
        if (!failures.HalfEdgeUsable(half)) continue;
        if (out.comp[static_cast<std::size_t>(half.to)] != kPending) continue;
        out.comp[static_cast<std::size_t>(half.to)] = id;
        queue.push_back(half.to);
      }
    }
  }
  return cone.size();
}

}  // namespace dcn::graph
