// Reusable per-thread traversal state.
//
// Repeated graph traversals (all-pairs BFS sweeps, Monte Carlo fault trials,
// per-pair min cuts, bulk route flattening) used to pay two hidden costs per
// call: a fresh O(V) heap allocation for visited/distance arrays and an O(V)
// re-initialization. The workspaces here amortize both: buffers grow to the
// largest graph seen and are then reused, and "clearing" is an epoch bump —
// O(1) — with per-entry stamps deciding whether a slot is current. Steady
// state is allocation-free, so traversal cost is O(frontier), not O(V).
//
// Workspaces are handed out per thread through the Scope RAII types below,
// which borrow from a thread-local freelist: nested borrows (a BFS wrapper
// invoked from inside a metric that already holds a workspace) receive
// distinct instances, and the pool's persistent workers (common/parallel.h)
// keep their buffers warm across parallel regions.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace dcn::graph {

// Unreachable marker for BFS distances, in links. (Declared here rather than
// in bfs.h so workspace accessors can return it; bfs.h re-exports it by
// inclusion.)
inline constexpr int kUnreachable = -1;

// Epoch-stamped boolean marks over a dense id range [0, size): Begin() is an
// O(1) epoch bump; O(size) work happens only on growth or on the (once per
// 2^32 traversals) stamp wraparound.
class EpochMarks {
 public:
  void Begin(std::size_t size) {
    if (stamp_.size() < size) stamp_.resize(size, 0);
    if (++epoch_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
  }

  bool Marked(std::int32_t id) const {
    return stamp_[static_cast<std::size_t>(id)] == epoch_;
  }
  // Marks `id`; true if it was unmarked before this call.
  bool Mark(std::int32_t id) {
    std::uint32_t& stamp = stamp_[static_cast<std::size_t>(id)];
    if (stamp == epoch_) return false;
    stamp = epoch_;
    return true;
  }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
};

// BFS state (visited marks, distances, parents, queue) valid for the nodes
// settled since the last Begin(). Distances/parents of unvisited nodes read
// as kUnreachable / kInvalidNode without any O(V) reset.
//
// The epoch stamp and the distance share one 64-bit word per node, so the
// visited check, the distance read, and a parent-less settle each touch a
// single array slot — the per-node memory traffic that dominates a BFS sweep.
class TraversalWorkspace {
 public:
  void Begin(std::size_t nodes) {
    if (state_.size() < nodes) {
      state_.resize(nodes, 0);
      parent_.resize(nodes);
    }
    if (++epoch_ == 0) {
      std::fill(state_.begin(), state_.end(), 0);
      epoch_ = 1;
    }
    queue_.clear();
  }

  bool Visited(NodeId node) const {
    return static_cast<std::uint32_t>(state_[static_cast<std::size_t>(node)] >>
                                      32) == epoch_;
  }
  // Records node as visited at distance `dist`, without a parent: the choice
  // for distance-only sweeps — it writes one word per settled node, and
  // Parent() after such a traversal is meaningless. Returns false (and does
  // not overwrite) if the node was already settled this epoch.
  bool Settle(NodeId node, int dist) {
    std::uint64_t& slot = state_[static_cast<std::size_t>(node)];
    if (static_cast<std::uint32_t>(slot >> 32) == epoch_) return false;
    slot = (static_cast<std::uint64_t>(epoch_) << 32) |
           static_cast<std::uint32_t>(dist);
    return true;
  }
  // As above but also records `parent`, for traversals that reconstruct
  // paths.
  bool Settle(NodeId node, int dist, NodeId parent) {
    if (!Settle(node, dist)) return false;
    parent_[static_cast<std::size_t>(node)] = parent;
    return true;
  }

  int Dist(NodeId node) const {
    const std::uint64_t slot = state_[static_cast<std::size_t>(node)];
    return static_cast<std::uint32_t>(slot >> 32) == epoch_
               ? static_cast<int>(static_cast<std::uint32_t>(slot))
               : kUnreachable;
  }
  // Dist without the epoch check, for nodes the caller knows are settled this
  // epoch (e.g. anything taken from VisitOrder()). Garbage for others.
  int DistSettled(NodeId node) const {
    return static_cast<int>(
        static_cast<std::uint32_t>(state_[static_cast<std::size_t>(node)]));
  }
  NodeId Parent(NodeId node) const {
    return Visited(node) ? parent_[static_cast<std::size_t>(node)]
                         : kInvalidNode;
  }

  // The BFS queue. Traversals only ever push (the head is an index), so after
  // a sweep this doubles as the visit order; its size is the reached count.
  std::vector<NodeId>& Frontier() { return queue_; }
  std::span<const NodeId> VisitOrder() const { return queue_; }

 private:
  std::vector<std::uint64_t> state_;  // (epoch << 32) | distance, per node
  std::vector<NodeId> parent_;
  std::vector<NodeId> queue_;
  std::uint32_t epoch_ = 0;
};

// Word-packed frontier state for the 64-lane multi-source BFS
// (graph/msbfs.h): one `uint64_t` per node in each of the seen / current /
// next bitmaps, bit j belonging to source lane j. Unlike TraversalWorkspace,
// slots are NOT epoch-stamped: the kernel's claim pass already touches every
// node's word once per level, so a full O(V) zero on Begin() costs less than
// carrying a stamp word through the per-level inner loops would. Buffers grow
// to the largest graph seen and are then reused — steady state allocates
// nothing.
class MsBfsWorkspace {
 public:
  void Begin(std::size_t nodes) {
    if (seen_.size() < nodes) {
      seen_.resize(nodes, 0);
      front_.resize(nodes, 0);
      next_.resize(nodes, 0);
    }
    std::fill_n(seen_.begin(), nodes, 0);
    std::fill_n(front_.begin(), nodes, 0);
    std::fill_n(next_.begin(), nodes, 0);
    active_.clear();
    spare_.clear();
    candidates_.clear();
    unfinished_.clear();
  }

  // Bit j set iff source lane j of the last run reached `node`. Valid after
  // MultiSourceBfs returns; this is the reachability readout the resilience
  // metrics probe.
  std::uint64_t SeenWord(NodeId node) const {
    return seen_[static_cast<std::size_t>(node)];
  }

  // Raw arrays for the kernel in graph/msbfs.h; sized by the last Begin().
  std::uint64_t* Seen() { return seen_.data(); }
  std::uint64_t* Front() { return front_.data(); }
  std::uint64_t* Next() { return next_.data(); }
  // Node ids whose Front() word is non-zero, maintained level by level by the
  // kernel (doubles as its top-down scatter list). Spare() is the next
  // level's list under construction (the two are swapped each level);
  // Candidates() collects nodes touched by a top-down scatter so the claim
  // pass visits only them; Unfinished() is the shrinking
  // still-missing-some-lane list the bottom-up gather iterates.
  std::vector<NodeId>& Active() { return active_; }
  std::vector<NodeId>& Spare() { return spare_; }
  std::vector<NodeId>& Candidates() { return candidates_; }
  std::vector<NodeId>& Unfinished() { return unfinished_; }

 private:
  std::vector<std::uint64_t> seen_;
  std::vector<std::uint64_t> front_;
  std::vector<std::uint64_t> next_;
  std::vector<NodeId> active_;
  std::vector<NodeId> spare_;
  std::vector<NodeId> candidates_;
  std::vector<NodeId> unfinished_;
};

// Scratch arrays for the unit-capacity Dinic in graph/paths.cc: a flat arc
// array (CSR layout) plus level/iterator/queue state. Rebuilt (overwritten,
// not reallocated) per solve; capacity persists across solves.
struct FlowWorkspace {
  std::vector<std::int32_t> offset;  // node -> first arc (NodeCount()+1)
  std::vector<std::int32_t> cursor;  // per-node fill cursor during build
  std::vector<std::int32_t> to;      // arc target node
  std::vector<std::int32_t> rev;     // global index of the twin arc
  std::vector<std::int8_t> cap;      // residual capacity, 0 or 1
  std::vector<std::int8_t> flow;     // net flow pushed (path extraction)
  std::vector<int> level;            // Dinic level graph
  std::vector<std::int32_t> iter;    // per-node arc iterator in Augment
  std::vector<NodeId> queue;         // level-BFS queue
  // Batched-solve state (graph::EdgeConnectivityBatch): pristine capacities
  // snapshotted after the arc build, restored by memcpy per query instead of
  // rebuilding the arc arrays; and the cached first-phase level graph of the
  // current source, shared by consecutive queries from that source.
  std::vector<std::int8_t> cap0;
  std::vector<int> level_first;
};

// RAII borrow of a TraversalWorkspace from the calling thread's freelist.
// Scopes must nest (stack discipline), which the RAII form guarantees.
class TraversalScope {
 public:
  TraversalScope();
  ~TraversalScope();
  TraversalScope(const TraversalScope&) = delete;
  TraversalScope& operator=(const TraversalScope&) = delete;

  TraversalWorkspace& operator*() const { return *ws_; }
  TraversalWorkspace* operator->() const { return ws_; }

 private:
  TraversalWorkspace* ws_;
};

// RAII borrow of a FlowWorkspace (same freelist discipline).
class FlowScope {
 public:
  FlowScope();
  ~FlowScope();
  FlowScope(const FlowScope&) = delete;
  FlowScope& operator=(const FlowScope&) = delete;

  FlowWorkspace& operator*() const { return *ws_; }
  FlowWorkspace* operator->() const { return ws_; }

 private:
  FlowWorkspace* ws_;
};

// RAII borrow of an MsBfsWorkspace (same freelist discipline).
class MsBfsScope {
 public:
  MsBfsScope();
  ~MsBfsScope();
  MsBfsScope(const MsBfsScope&) = delete;
  MsBfsScope& operator=(const MsBfsScope&) = delete;

  MsBfsWorkspace& operator*() const { return *ws_; }
  MsBfsWorkspace* operator->() const { return ws_; }

 private:
  MsBfsWorkspace* ws_;
};

}  // namespace dcn::graph
