#include "graph/paths.h"

#include <limits>

#include "common/error.h"
#include "obs/obs.h"

namespace dcn::graph {

namespace {

// Minimal unit-capacity Dinic keeping per-arc flow so paths can be
// reconstructed afterwards. Arcs live in a flat CSR layout inside the
// caller's FlowWorkspace: the arrays are assigned (overwriting old contents
// in place) per solve, so repeated solves on one workspace do not allocate
// once the buffers have grown to the largest instance seen. The kernels are
// free functions over the workspace so the single-shot entry points and the
// batched engine (EdgeConnectivityBatch) share one implementation.
//
// Arc order per node reproduces the historical vector-of-vectors append
// order exactly — for each live edge (u, v) in edge-id order, u receives
// [forward u->v, residual of v->u] and v receives [residual of u->v,
// forward v->u] — so augmentation and path extraction visit arcs in the
// same sequence and produce identical paths.

void AddArcPair(FlowWorkspace& ws, NodeId from, NodeId to) {
  const std::int32_t fwd = ws.cursor[static_cast<std::size_t>(from)]++;
  const std::int32_t res = ws.cursor[static_cast<std::size_t>(to)]++;
  ws.to[static_cast<std::size_t>(fwd)] = to;
  ws.rev[static_cast<std::size_t>(fwd)] = res;
  ws.cap[static_cast<std::size_t>(fwd)] = 1;
  ws.to[static_cast<std::size_t>(res)] = from;
  ws.rev[static_cast<std::size_t>(res)] = fwd;
  ws.cap[static_cast<std::size_t>(res)] = 0;
}

void BuildUnitArcs(const CsrView& csr, const FailureSet* failures,
                   FlowWorkspace& ws) {
  const std::size_t nodes = csr.NodeCount();
  ws.offset.assign(nodes + 1, 0);
  // Two passes: count live arc slots per node, prefix-sum, then fill with
  // per-node cursors. Each live edge contributes two arcs to each endpoint
  // (forward + twin residual).
  for (EdgeId edge = 0; static_cast<std::size_t>(edge) < csr.EdgeCount();
       ++edge) {
    if (failures != nullptr && failures->EdgeDead(edge)) continue;
    const auto [u, v] = csr.Endpoints(edge);
    if (failures != nullptr &&
        (failures->NodeDead(u) || failures->NodeDead(v))) {
      continue;
    }
    ws.offset[static_cast<std::size_t>(u) + 1] += 2;
    ws.offset[static_cast<std::size_t>(v) + 1] += 2;
  }
  for (std::size_t node = 0; node < nodes; ++node) {
    ws.offset[node + 1] += ws.offset[node];
  }
  const auto arcs = static_cast<std::size_t>(ws.offset[nodes]);
  ws.cursor.assign(ws.offset.begin(), ws.offset.end() - 1);
  ws.to.resize(arcs);
  ws.rev.resize(arcs);
  ws.cap.assign(arcs, 0);
  ws.flow.assign(arcs, 0);
  for (EdgeId edge = 0; static_cast<std::size_t>(edge) < csr.EdgeCount();
       ++edge) {
    if (failures != nullptr && failures->EdgeDead(edge)) continue;
    const auto [u, v] = csr.Endpoints(edge);
    if (failures != nullptr &&
        (failures->NodeDead(u) || failures->NodeDead(v))) {
      continue;
    }
    AddArcPair(ws, u, v);
    AddArcPair(ws, v, u);
  }
}

// Live incident links of a node, straight from the arc layout: each live
// edge contributed exactly two arc slots to each endpoint. This caps the
// s-t flow, letting the driver skip the final (always failing) level build
// once min(deg) paths are found.
std::size_t LiveDegree(const FlowWorkspace& ws, NodeId node) {
  return static_cast<std::size_t>(ws.offset[static_cast<std::size_t>(node) + 1] -
                                  ws.offset[static_cast<std::size_t>(node)]) /
         2;
}

// Level BFS over positive-residual arcs. When `truncate` is set, expansion
// stops at dst's level: deeper nodes stay at -1. Augmentation only ever
// advances along level+1 chains ending at dst, so explorations past dst's
// level can never reach it — with full levels they fail without touching
// cap/flow, with truncated levels they are skipped. Either way the
// augmenting-path sequence, and therefore the result, is bit-identical.
bool BuildUnitLevels(FlowWorkspace& ws, std::size_t nodes, NodeId src,
                     NodeId dst, bool truncate) {
  ws.level.assign(nodes, -1);
  ws.queue.clear();
  ws.level[static_cast<std::size_t>(src)] = 0;
  ws.queue.push_back(src);
  int dst_level = -1;
  for (std::size_t head = 0; head < ws.queue.size(); ++head) {
    const NodeId node = ws.queue[head];
    if (dst_level >= 0 &&
        ws.level[static_cast<std::size_t>(node)] >= dst_level) {
      break;  // the queue is level-ordered: nothing shallower follows
    }
    for (std::int32_t a = ws.offset[static_cast<std::size_t>(node)];
         a < ws.offset[static_cast<std::size_t>(node) + 1]; ++a) {
      const NodeId next = ws.to[static_cast<std::size_t>(a)];
      if (ws.cap[static_cast<std::size_t>(a)] > 0 &&
          ws.level[static_cast<std::size_t>(next)] < 0) {
        ws.level[static_cast<std::size_t>(next)] =
            ws.level[static_cast<std::size_t>(node)] + 1;
        ws.queue.push_back(next);
        if (truncate && next == dst) {
          dst_level = ws.level[static_cast<std::size_t>(next)];
        }
      }
    }
  }
  return ws.level[static_cast<std::size_t>(dst)] >= 0;
}

bool AugmentUnit(FlowWorkspace& ws, NodeId node, NodeId dst) {
  if (node == dst) return true;
  for (std::int32_t& i = ws.iter[static_cast<std::size_t>(node)];
       i < ws.offset[static_cast<std::size_t>(node) + 1]; ++i) {
    const auto a = static_cast<std::size_t>(i);
    const NodeId next = ws.to[a];
    if (ws.cap[a] <= 0 || ws.level[static_cast<std::size_t>(next)] !=
                              ws.level[static_cast<std::size_t>(node)] + 1) {
      continue;
    }
    if (AugmentUnit(ws, next, dst)) {
      ws.cap[a] -= 1;
      ws.flow[a] += 1;
      const auto twin = static_cast<std::size_t>(ws.rev[a]);
      ws.cap[twin] += 1;
      // Pushing along a residual (reverse) arc cancels prior flow instead
      // of creating antiparallel flow.
      if (ws.flow[twin] > 0) {
        ws.flow[twin] -= 1;
        ws.flow[a] -= 1;
      }
      return true;
    }
  }
  return false;
}

std::size_t RunUnitFlow(FlowWorkspace& ws, std::size_t nodes, NodeId src,
                        NodeId dst, std::size_t max_paths) {
  const std::size_t bound = std::min(LiveDegree(ws, src), LiveDegree(ws, dst));
  std::size_t flow = 0;
  while (flow < max_paths && flow < bound &&
         BuildUnitLevels(ws, nodes, src, dst, /*truncate=*/true)) {
    // Reset every node's arc iterator to its first arc.
    ws.iter.assign(ws.offset.begin(), ws.offset.end() - 1);
    while (flow < max_paths && AugmentUnit(ws, src, dst)) ++flow;
  }
  return flow;
}

// Decomposes the current flow into paths by walking saturated arcs from
// src, consuming each as it is used.
std::vector<std::vector<NodeId>> ExtractUnitPaths(FlowWorkspace& ws,
                                                  std::size_t nodes, NodeId src,
                                                  NodeId dst,
                                                  std::size_t count) {
  std::vector<std::vector<NodeId>> paths;
  paths.reserve(count);
  for (std::size_t p = 0; p < count; ++p) {
    std::vector<NodeId> path{src};
    NodeId node = src;
    while (node != dst) {
      bool advanced = false;
      for (std::int32_t a = ws.offset[static_cast<std::size_t>(node)];
           a < ws.offset[static_cast<std::size_t>(node) + 1]; ++a) {
        if (ws.flow[static_cast<std::size_t>(a)] > 0) {
          ws.flow[static_cast<std::size_t>(a)] = 0;
          node = ws.to[static_cast<std::size_t>(a)];
          path.push_back(node);
          advanced = true;
          break;
        }
      }
      // Flow conservation guarantees an outgoing saturated arc until dst.
      DCN_ASSERT(advanced);
      // A unit-flow path visits each node at most deg(node) times; guard
      // against pathological cycles in the decomposition.
      DCN_ASSERT(path.size() <= 4 * nodes + 2);
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

void CheckEndpoints(std::size_t node_count, NodeId src, NodeId dst) {
  DCN_REQUIRE(src >= 0 && static_cast<std::size_t>(src) < node_count,
              "src out of range");
  DCN_REQUIRE(dst >= 0 && static_cast<std::size_t>(dst) < node_count,
              "dst out of range");
  DCN_REQUIRE(src != dst, "src and dst must differ");
}

}  // namespace

std::vector<std::vector<NodeId>> EdgeDisjointPaths(const CsrView& csr,
                                                   NodeId src, NodeId dst,
                                                   FlowWorkspace& ws,
                                                   std::size_t max_paths,
                                                   const FailureSet* failures) {
  CheckEndpoints(csr.NodeCount(), src, dst);
  if (failures != nullptr &&
      (failures->NodeDead(src) || failures->NodeDead(dst))) {
    return {};
  }
  BuildUnitArcs(csr, failures, ws);
  const std::size_t count = RunUnitFlow(ws, csr.NodeCount(), src, dst, max_paths);
  return ExtractUnitPaths(ws, csr.NodeCount(), src, dst, count);
}

std::vector<std::vector<NodeId>> EdgeDisjointPaths(const Graph& graph,
                                                   NodeId src, NodeId dst,
                                                   std::size_t max_paths,
                                                   const FailureSet* failures) {
  FlowScope ws;
  return EdgeDisjointPaths(graph.Csr(), src, dst, *ws, max_paths, failures);
}

std::size_t EdgeConnectivity(const CsrView& csr, NodeId src, NodeId dst,
                             FlowWorkspace& ws, const FailureSet* failures) {
  CheckEndpoints(csr.NodeCount(), src, dst);
  if (failures != nullptr &&
      (failures->NodeDead(src) || failures->NodeDead(dst))) {
    return 0;
  }
  BuildUnitArcs(csr, failures, ws);
  return RunUnitFlow(ws, csr.NodeCount(), src, dst,
                     std::numeric_limits<std::size_t>::max());
}

std::size_t EdgeConnectivity(const Graph& graph, NodeId src, NodeId dst,
                             const FailureSet* failures) {
  FlowScope ws;
  return EdgeConnectivity(graph.Csr(), src, dst, *ws, failures);
}

EdgeConnectivityBatch::EdgeConnectivityBatch(const CsrView& csr,
                                             FlowWorkspace& ws,
                                             const FailureSet* failures)
    : ws_(ws), failures_(failures), nodes_(csr.NodeCount()) {
  BuildUnitArcs(csr, failures, ws_);
  // Pristine capacities, restored per query. The arc topology itself never
  // changes within a batch, so this memcpy is the whole reset.
  ws_.cap0.assign(ws_.cap.begin(), ws_.cap.end());
}

std::size_t EdgeConnectivityBatch::Connectivity(NodeId src, NodeId dst,
                                                bool repeated_source) {
  CheckEndpoints(nodes_, src, dst);
  static obs::Counter& c_solves = obs::GetCounter("dinic/unit_solves");
  static obs::Counter& c_reuse = obs::GetCounter("dinic/reuse_hits");
  static obs::Counter& c_level = obs::GetCounter("dinic/source_level_hits");
  c_solves.Add(1);
  if (failures_ != nullptr &&
      (failures_->NodeDead(src) || failures_->NodeDead(dst))) {
    return 0;
  }
  if (first_) {
    first_ = false;
  } else {
    ws_.cap.assign(ws_.cap0.begin(), ws_.cap0.end());
    ws_.flow.assign(ws_.flow.size(), 0);
    c_reuse.Add(1);
  }

  const std::size_t bound = std::min(LiveDegree(ws_, src), LiveDegree(ws_, dst));
  std::size_t flow = 0;
  bool phase_one = true;
  while (flow < bound) {
    bool reachable;
    if (phase_one && cached_src_ == src) {
      // The cached level graph was computed on pristine capacities, exactly
      // the state the first phase of this query sees — reuse it. Cached
      // levels are untruncated; extra depth only means the DFS may explore
      // (and reject, side-effect-free) nodes past dst's level, which cannot
      // change the augmenting-path sequence.
      ws_.level.assign(ws_.level_first.begin(), ws_.level_first.end());
      reachable = ws_.level[static_cast<std::size_t>(dst)] >= 0;
      c_level.Add(1);
    } else if (phase_one && repeated_source) {
      reachable = BuildUnitLevels(ws_, nodes_, src, dst, /*truncate=*/false);
      ws_.level_first.assign(ws_.level.begin(), ws_.level.end());
      cached_src_ = src;
    } else {
      reachable = BuildUnitLevels(ws_, nodes_, src, dst, /*truncate=*/true);
    }
    if (!reachable) break;
    phase_one = false;
    ws_.iter.assign(ws_.offset.begin(), ws_.offset.end() - 1);
    while (AugmentUnit(ws_, src, dst)) ++flow;
  }
  return flow;
}

}  // namespace dcn::graph
