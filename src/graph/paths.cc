#include "graph/paths.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/error.h"

namespace dcn::graph {

namespace {

// Minimal unit-capacity Dinic keeping per-arc flow so paths can be
// reconstructed afterwards. Arcs are indexed per node; reverse arc twins are
// stored explicitly.
class UnitFlow {
 public:
  UnitFlow(const Graph& graph, const FailureSet* failures)
      : arcs_(graph.NodeCount()) {
    for (EdgeId edge = 0; static_cast<std::size_t>(edge) < graph.EdgeCount();
         ++edge) {
      if (failures != nullptr && failures->EdgeDead(edge)) continue;
      const auto [u, v] = graph.Endpoints(edge);
      if (failures != nullptr &&
          (failures->NodeDead(u) || failures->NodeDead(v))) {
        continue;
      }
      AddArc(u, v);
      AddArc(v, u);
    }
  }

  std::size_t Run(NodeId src, NodeId dst, std::size_t max_paths) {
    std::size_t flow = 0;
    while (flow < max_paths && BuildLevels(src, dst)) {
      iter_.assign(arcs_.size(), 0);
      while (flow < max_paths && Augment(src, dst)) ++flow;
    }
    return flow;
  }

  // Decomposes the current flow into paths by walking saturated arcs from
  // src, consuming each as it is used.
  std::vector<std::vector<NodeId>> ExtractPaths(NodeId src, NodeId dst,
                                                std::size_t count) {
    std::vector<std::vector<NodeId>> paths;
    paths.reserve(count);
    for (std::size_t p = 0; p < count; ++p) {
      std::vector<NodeId> path{src};
      NodeId node = src;
      while (node != dst) {
        bool advanced = false;
        for (Arc& arc : arcs_[node]) {
          if (arc.flow > 0) {
            arc.flow = 0;
            node = arc.to;
            path.push_back(node);
            advanced = true;
            break;
          }
        }
        // Flow conservation guarantees an outgoing saturated arc until dst.
        DCN_ASSERT(advanced);
        // A unit-flow path visits each node at most deg(node) times; guard
        // against pathological cycles in the decomposition.
        DCN_ASSERT(path.size() <= 4 * arcs_.size() + 2);
      }
      paths.push_back(std::move(path));
    }
    return paths;
  }

 private:
  struct Arc {
    NodeId to;
    std::int32_t rev;
    std::int8_t cap;   // residual capacity, 0 or 1
    std::int8_t flow;  // net flow pushed on this arc (for extraction)
  };

  void AddArc(NodeId from, NodeId to) {
    arcs_[from].push_back(
        Arc{to, static_cast<std::int32_t>(arcs_[to].size()), 1, 0});
    arcs_[to].push_back(
        Arc{from, static_cast<std::int32_t>(arcs_[from].size()) - 1, 0, 0});
  }

  bool BuildLevels(NodeId src, NodeId dst) {
    level_.assign(arcs_.size(), -1);
    std::deque<NodeId> queue;
    level_[src] = 0;
    queue.push_back(src);
    while (!queue.empty()) {
      const NodeId node = queue.front();
      queue.pop_front();
      for (const Arc& arc : arcs_[node]) {
        if (arc.cap > 0 && level_[arc.to] < 0) {
          level_[arc.to] = level_[node] + 1;
          queue.push_back(arc.to);
        }
      }
    }
    return level_[dst] >= 0;
  }

  bool Augment(NodeId node, NodeId dst) {
    if (node == dst) return true;
    for (std::size_t& i = iter_[node]; i < arcs_[node].size(); ++i) {
      Arc& arc = arcs_[node][i];
      if (arc.cap <= 0 || level_[arc.to] != level_[node] + 1) continue;
      if (Augment(arc.to, dst)) {
        arc.cap -= 1;
        arc.flow += 1;
        Arc& twin = arcs_[arc.to][arc.rev];
        twin.cap += 1;
        // Pushing along a residual (reverse) arc cancels prior flow instead
        // of creating antiparallel flow.
        if (twin.flow > 0) {
          twin.flow -= 1;
          arc.flow -= 1;
        }
        return true;
      }
    }
    return false;
  }

  std::vector<std::vector<Arc>> arcs_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

void CheckEndpoints(const Graph& graph, NodeId src, NodeId dst) {
  DCN_REQUIRE(src >= 0 && static_cast<std::size_t>(src) < graph.NodeCount(),
              "src out of range");
  DCN_REQUIRE(dst >= 0 && static_cast<std::size_t>(dst) < graph.NodeCount(),
              "dst out of range");
  DCN_REQUIRE(src != dst, "src and dst must differ");
}

}  // namespace

std::vector<std::vector<NodeId>> EdgeDisjointPaths(const Graph& graph, NodeId src,
                                                   NodeId dst,
                                                   std::size_t max_paths,
                                                   const FailureSet* failures) {
  CheckEndpoints(graph, src, dst);
  if (failures != nullptr &&
      (failures->NodeDead(src) || failures->NodeDead(dst))) {
    return {};
  }
  UnitFlow flow{graph, failures};
  const std::size_t count = flow.Run(src, dst, max_paths);
  return flow.ExtractPaths(src, dst, count);
}

std::size_t EdgeConnectivity(const Graph& graph, NodeId src, NodeId dst,
                             const FailureSet* failures) {
  CheckEndpoints(graph, src, dst);
  if (failures != nullptr &&
      (failures->NodeDead(src) || failures->NodeDead(dst))) {
    return 0;
  }
  UnitFlow flow{graph, failures};
  return flow.Run(src, dst, std::numeric_limits<std::size_t>::max());
}

}  // namespace dcn::graph
