#include "graph/paths.h"

#include <limits>

#include "common/error.h"

namespace dcn::graph {

namespace {

// Minimal unit-capacity Dinic keeping per-arc flow so paths can be
// reconstructed afterwards. Arcs live in a flat CSR layout inside the
// caller's FlowWorkspace: the arrays are assigned (overwriting old contents
// in place) per solve, so repeated solves on one workspace do not allocate
// once the buffers have grown to the largest instance seen.
//
// Arc order per node reproduces the historical vector-of-vectors append
// order exactly — for each live edge (u, v) in edge-id order, u receives
// [forward u->v, residual of v->u] and v receives [residual of u->v,
// forward v->u] — so augmentation and path extraction visit arcs in the
// same sequence and produce identical paths.
class UnitFlow {
 public:
  UnitFlow(const CsrView& csr, const FailureSet* failures, FlowWorkspace& ws)
      : ws_(ws), nodes_(csr.NodeCount()) {
    ws_.offset.assign(nodes_ + 1, 0);
    // Two passes: count live arc slots per node, prefix-sum, then fill with
    // per-node cursors. Each live edge contributes two arcs to each endpoint
    // (forward + twin residual).
    for (EdgeId edge = 0; static_cast<std::size_t>(edge) < csr.EdgeCount();
         ++edge) {
      if (failures != nullptr && failures->EdgeDead(edge)) continue;
      const auto [u, v] = csr.Endpoints(edge);
      if (failures != nullptr &&
          (failures->NodeDead(u) || failures->NodeDead(v))) {
        continue;
      }
      ws_.offset[static_cast<std::size_t>(u) + 1] += 2;
      ws_.offset[static_cast<std::size_t>(v) + 1] += 2;
    }
    for (std::size_t node = 0; node < nodes_; ++node) {
      ws_.offset[node + 1] += ws_.offset[node];
    }
    const auto arcs = static_cast<std::size_t>(ws_.offset[nodes_]);
    ws_.cursor.assign(ws_.offset.begin(), ws_.offset.end() - 1);
    ws_.to.resize(arcs);
    ws_.rev.resize(arcs);
    ws_.cap.assign(arcs, 0);
    ws_.flow.assign(arcs, 0);
    for (EdgeId edge = 0; static_cast<std::size_t>(edge) < csr.EdgeCount();
         ++edge) {
      if (failures != nullptr && failures->EdgeDead(edge)) continue;
      const auto [u, v] = csr.Endpoints(edge);
      if (failures != nullptr &&
          (failures->NodeDead(u) || failures->NodeDead(v))) {
        continue;
      }
      AddArcPair(u, v);
      AddArcPair(v, u);
    }
  }

  std::size_t Run(NodeId src, NodeId dst, std::size_t max_paths) {
    std::size_t flow = 0;
    while (flow < max_paths && BuildLevels(src, dst)) {
      // Reset every node's arc iterator to its first arc.
      ws_.iter.assign(ws_.offset.begin(), ws_.offset.end() - 1);
      while (flow < max_paths && Augment(src, dst)) ++flow;
    }
    return flow;
  }

  // Decomposes the current flow into paths by walking saturated arcs from
  // src, consuming each as it is used.
  std::vector<std::vector<NodeId>> ExtractPaths(NodeId src, NodeId dst,
                                                std::size_t count) {
    std::vector<std::vector<NodeId>> paths;
    paths.reserve(count);
    for (std::size_t p = 0; p < count; ++p) {
      std::vector<NodeId> path{src};
      NodeId node = src;
      while (node != dst) {
        bool advanced = false;
        for (std::int32_t a = ws_.offset[static_cast<std::size_t>(node)];
             a < ws_.offset[static_cast<std::size_t>(node) + 1]; ++a) {
          if (ws_.flow[static_cast<std::size_t>(a)] > 0) {
            ws_.flow[static_cast<std::size_t>(a)] = 0;
            node = ws_.to[static_cast<std::size_t>(a)];
            path.push_back(node);
            advanced = true;
            break;
          }
        }
        // Flow conservation guarantees an outgoing saturated arc until dst.
        DCN_ASSERT(advanced);
        // A unit-flow path visits each node at most deg(node) times; guard
        // against pathological cycles in the decomposition.
        DCN_ASSERT(path.size() <= 4 * nodes_ + 2);
      }
      paths.push_back(std::move(path));
    }
    return paths;
  }

 private:
  void AddArcPair(NodeId from, NodeId to) {
    const std::int32_t fwd = ws_.cursor[static_cast<std::size_t>(from)]++;
    const std::int32_t res = ws_.cursor[static_cast<std::size_t>(to)]++;
    ws_.to[static_cast<std::size_t>(fwd)] = to;
    ws_.rev[static_cast<std::size_t>(fwd)] = res;
    ws_.cap[static_cast<std::size_t>(fwd)] = 1;
    ws_.to[static_cast<std::size_t>(res)] = from;
    ws_.rev[static_cast<std::size_t>(res)] = fwd;
    ws_.cap[static_cast<std::size_t>(res)] = 0;
  }

  bool BuildLevels(NodeId src, NodeId dst) {
    ws_.level.assign(nodes_, -1);
    ws_.queue.clear();
    ws_.level[static_cast<std::size_t>(src)] = 0;
    ws_.queue.push_back(src);
    for (std::size_t head = 0; head < ws_.queue.size(); ++head) {
      const NodeId node = ws_.queue[head];
      for (std::int32_t a = ws_.offset[static_cast<std::size_t>(node)];
           a < ws_.offset[static_cast<std::size_t>(node) + 1]; ++a) {
        const NodeId next = ws_.to[static_cast<std::size_t>(a)];
        if (ws_.cap[static_cast<std::size_t>(a)] > 0 &&
            ws_.level[static_cast<std::size_t>(next)] < 0) {
          ws_.level[static_cast<std::size_t>(next)] =
              ws_.level[static_cast<std::size_t>(node)] + 1;
          ws_.queue.push_back(next);
        }
      }
    }
    return ws_.level[static_cast<std::size_t>(dst)] >= 0;
  }

  bool Augment(NodeId node, NodeId dst) {
    if (node == dst) return true;
    for (std::int32_t& i = ws_.iter[static_cast<std::size_t>(node)];
         i < ws_.offset[static_cast<std::size_t>(node) + 1]; ++i) {
      const auto a = static_cast<std::size_t>(i);
      const NodeId next = ws_.to[a];
      if (ws_.cap[a] <= 0 || ws_.level[static_cast<std::size_t>(next)] !=
                                 ws_.level[static_cast<std::size_t>(node)] + 1) {
        continue;
      }
      if (Augment(next, dst)) {
        ws_.cap[a] -= 1;
        ws_.flow[a] += 1;
        const auto twin = static_cast<std::size_t>(ws_.rev[a]);
        ws_.cap[twin] += 1;
        // Pushing along a residual (reverse) arc cancels prior flow instead
        // of creating antiparallel flow.
        if (ws_.flow[twin] > 0) {
          ws_.flow[twin] -= 1;
          ws_.flow[a] -= 1;
        }
        return true;
      }
    }
    return false;
  }

  FlowWorkspace& ws_;
  std::size_t nodes_;
};

void CheckEndpoints(std::size_t node_count, NodeId src, NodeId dst) {
  DCN_REQUIRE(src >= 0 && static_cast<std::size_t>(src) < node_count,
              "src out of range");
  DCN_REQUIRE(dst >= 0 && static_cast<std::size_t>(dst) < node_count,
              "dst out of range");
  DCN_REQUIRE(src != dst, "src and dst must differ");
}

}  // namespace

std::vector<std::vector<NodeId>> EdgeDisjointPaths(const CsrView& csr,
                                                   NodeId src, NodeId dst,
                                                   FlowWorkspace& ws,
                                                   std::size_t max_paths,
                                                   const FailureSet* failures) {
  CheckEndpoints(csr.NodeCount(), src, dst);
  if (failures != nullptr &&
      (failures->NodeDead(src) || failures->NodeDead(dst))) {
    return {};
  }
  UnitFlow flow{csr, failures, ws};
  const std::size_t count = flow.Run(src, dst, max_paths);
  return flow.ExtractPaths(src, dst, count);
}

std::vector<std::vector<NodeId>> EdgeDisjointPaths(const Graph& graph,
                                                   NodeId src, NodeId dst,
                                                   std::size_t max_paths,
                                                   const FailureSet* failures) {
  FlowScope ws;
  return EdgeDisjointPaths(graph.Csr(), src, dst, *ws, max_paths, failures);
}

std::size_t EdgeConnectivity(const CsrView& csr, NodeId src, NodeId dst,
                             FlowWorkspace& ws, const FailureSet* failures) {
  CheckEndpoints(csr.NodeCount(), src, dst);
  if (failures != nullptr &&
      (failures->NodeDead(src) || failures->NodeDead(dst))) {
    return 0;
  }
  UnitFlow flow{csr, failures, ws};
  return flow.Run(src, dst, std::numeric_limits<std::size_t>::max());
}

std::size_t EdgeConnectivity(const Graph& graph, NodeId src, NodeId dst,
                             const FailureSet* failures) {
  FlowScope ws;
  return EdgeConnectivity(graph.Csr(), src, dst, *ws, failures);
}

}  // namespace dcn::graph
