// Breadth-first search utilities. Distances are measured in *links* (a
// server->switch->server relay counts as 2), the convention used by the
// server-centric DCN literature for diameter and path-length comparisons.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace dcn::graph {

inline constexpr int kUnreachable = -1;

// Distance (in links) from src to every node; kUnreachable where no live path
// exists. If `failures` is non-null, dead nodes/links are not traversed and a
// dead src yields all-unreachable.
std::vector<int> BfsDistances(const Graph& graph, NodeId src,
                              const FailureSet* failures = nullptr);

// A shortest path src..dst inclusive (node sequence), or empty if unreachable.
std::vector<NodeId> ShortestPath(const Graph& graph, NodeId src, NodeId dst,
                                 const FailureSet* failures = nullptr);

// Number of nodes reachable from src (including src itself).
std::size_t ReachableCount(const Graph& graph, NodeId src,
                           const FailureSet* failures = nullptr);

// True if every live node is reachable from every other live node. With no
// failures this is plain graph connectivity.
bool IsConnected(const Graph& graph, const FailureSet* failures = nullptr);

}  // namespace dcn::graph
