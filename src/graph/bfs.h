// Breadth-first search utilities. Distances are measured in *links* (a
// server->switch->server relay counts as 2), the convention used by the
// server-centric DCN literature for diameter and path-length comparisons.
//
// Two tiers:
//  * CSR + workspace overloads — the allocation-free core the hot paths use.
//    Results land in the caller's TraversalWorkspace (read via ws.Dist());
//    repeated sweeps on one workspace cost O(frontier) to reset, not O(V).
//  * Graph overloads — the original convenience signatures, now thin
//    wrappers that run the CSR core on a borrowed per-thread workspace and
//    materialize the classic return values.
#pragma once

#include <vector>

#include "graph/csr.h"
#include "graph/graph.h"
#include "graph/workspace.h"

namespace dcn::graph {

// --- CSR core (allocation-free in steady state) ---------------------------

// BFS from src over the CSR view; distances/parents land in `ws`. Returns the
// number of nodes reached including src (0 if src is dead under `failures`).
// After the call ws.VisitOrder() lists the reached nodes in settle order.
std::size_t BfsDistances(const CsrView& csr, NodeId src, TraversalWorkspace& ws,
                         const FailureSet* failures = nullptr);

// A shortest path src..dst inclusive (node sequence), or empty if
// unreachable. Early-exits the moment dst is settled instead of finishing the
// full sweep — on its way out of a large network that saves nearly the whole
// frontier beyond dist(dst).
std::vector<NodeId> ShortestPath(const CsrView& csr, NodeId src, NodeId dst,
                                 TraversalWorkspace& ws,
                                 const FailureSet* failures = nullptr);

// --- Graph wrappers (original signatures) ----------------------------------

// Distance (in links) from src to every node; kUnreachable where no live path
// exists. If `failures` is non-null, dead nodes/links are not traversed and a
// dead src yields all-unreachable.
std::vector<int> BfsDistances(const Graph& graph, NodeId src,
                              const FailureSet* failures = nullptr);

// A shortest path src..dst inclusive (node sequence), or empty if unreachable.
std::vector<NodeId> ShortestPath(const Graph& graph, NodeId src, NodeId dst,
                                 const FailureSet* failures = nullptr);

// Number of nodes reachable from src (including src itself).
std::size_t ReachableCount(const Graph& graph, NodeId src,
                           const FailureSet* failures = nullptr);

// True if every live node is reachable from every other live node. With no
// failures this is plain graph connectivity.
bool IsConnected(const Graph& graph, const FailureSet* failures = nullptr);

}  // namespace dcn::graph
