#include "graph/workspace.h"

#include <memory>

namespace dcn::graph {
namespace {

// Per-thread freelists. Borrowing is strictly LIFO (scopes nest), so a depth
// index over a grow-only vector suffices; entries outlive the scope and keep
// their buffers warm for the next borrow. Thread-local storage means no
// sharing and no synchronization — each pool worker (common/parallel.h keeps
// them alive across regions) owns its workspaces for the process lifetime.
template <typename T>
struct Freelist {
  std::vector<std::unique_ptr<T>> items;
  std::size_t depth = 0;

  T* Borrow() {
    if (depth == items.size()) items.push_back(std::make_unique<T>());
    return items[depth++].get();
  }
  void Release() { --depth; }
};

thread_local Freelist<TraversalWorkspace> tl_traversal;
thread_local Freelist<FlowWorkspace> tl_flow;
thread_local Freelist<MsBfsWorkspace> tl_msbfs;

}  // namespace

TraversalScope::TraversalScope() : ws_(tl_traversal.Borrow()) {}
TraversalScope::~TraversalScope() { tl_traversal.Release(); }

FlowScope::FlowScope() : ws_(tl_flow.Borrow()) {}
FlowScope::~FlowScope() { tl_flow.Release(); }

MsBfsScope::MsBfsScope() : ws_(tl_msbfs.Borrow()) {}
MsBfsScope::~MsBfsScope() { tl_msbfs.Release(); }

}  // namespace dcn::graph
