// Edge-disjoint path extraction between two servers.
//
// The BCCC/ABCCC papers advertise "multiple near-equal parallel paths"; this
// module measures that claim: it computes a maximum set of pairwise
// link-disjoint paths (max-flow with unit link capacities) and returns the
// concrete paths so their lengths can be compared.
//
// The workspace overloads run the solver on caller-provided scratch
// (graph/workspace.h): the flat arc arrays are overwritten, not reallocated,
// so steady-state sampling loops (metrics::SampledPairCuts) stay
// allocation-free. The Graph overloads borrow a per-thread workspace.
#pragma once

#include <vector>

#include "graph/csr.h"
#include "graph/graph.h"
#include "graph/workspace.h"

namespace dcn::graph {

// A maximum-cardinality set of pairwise link-disjoint src->dst paths (each a
// node sequence src..dst). Stops early once `max_paths` are found. Paths come
// out shortest-first-ish (Dinic augments along level graphs) but no strict
// order is guaranteed. Empty result iff dst is unreachable.
std::vector<std::vector<NodeId>> EdgeDisjointPaths(
    const Graph& graph, NodeId src, NodeId dst,
    std::size_t max_paths = static_cast<std::size_t>(-1),
    const FailureSet* failures = nullptr);

std::vector<std::vector<NodeId>> EdgeDisjointPaths(
    const CsrView& csr, NodeId src, NodeId dst, FlowWorkspace& ws,
    std::size_t max_paths = static_cast<std::size_t>(-1),
    const FailureSet* failures = nullptr);

// Cardinality only (cheaper than materializing paths).
std::size_t EdgeConnectivity(const Graph& graph, NodeId src, NodeId dst,
                             const FailureSet* failures = nullptr);

std::size_t EdgeConnectivity(const CsrView& csr, NodeId src, NodeId dst,
                             FlowWorkspace& ws,
                             const FailureSet* failures = nullptr);

}  // namespace dcn::graph
