// Edge-disjoint path extraction between two servers.
//
// The BCCC/ABCCC papers advertise "multiple near-equal parallel paths"; this
// module measures that claim: it computes a maximum set of pairwise
// link-disjoint paths (max-flow with unit link capacities) and returns the
// concrete paths so their lengths can be compared.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace dcn::graph {

// A maximum-cardinality set of pairwise link-disjoint src->dst paths (each a
// node sequence src..dst). Stops early once `max_paths` are found. Paths come
// out shortest-first-ish (Dinic augments along level graphs) but no strict
// order is guaranteed. Empty result iff dst is unreachable.
std::vector<std::vector<NodeId>> EdgeDisjointPaths(
    const Graph& graph, NodeId src, NodeId dst,
    std::size_t max_paths = static_cast<std::size_t>(-1),
    const FailureSet* failures = nullptr);

// Cardinality only (cheaper than materializing paths).
std::size_t EdgeConnectivity(const Graph& graph, NodeId src, NodeId dst,
                             const FailureSet* failures = nullptr);

}  // namespace dcn::graph
