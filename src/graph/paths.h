// Edge-disjoint path extraction between two servers.
//
// The BCCC/ABCCC papers advertise "multiple near-equal parallel paths"; this
// module measures that claim: it computes a maximum set of pairwise
// link-disjoint paths (max-flow with unit link capacities) and returns the
// concrete paths so their lengths can be compared.
//
// The workspace overloads run the solver on caller-provided scratch
// (graph/workspace.h): the flat arc arrays are overwritten, not reallocated,
// so steady-state sampling loops (metrics::SampledPairCuts) stay
// allocation-free. The Graph overloads borrow a per-thread workspace.
#pragma once

#include <vector>

#include "graph/csr.h"
#include "graph/graph.h"
#include "graph/workspace.h"

namespace dcn::graph {

// A maximum-cardinality set of pairwise link-disjoint src->dst paths (each a
// node sequence src..dst). Stops early once `max_paths` are found. Paths come
// out shortest-first-ish (Dinic augments along level graphs) but no strict
// order is guaranteed. Empty result iff dst is unreachable.
std::vector<std::vector<NodeId>> EdgeDisjointPaths(
    const Graph& graph, NodeId src, NodeId dst,
    std::size_t max_paths = static_cast<std::size_t>(-1),
    const FailureSet* failures = nullptr);

std::vector<std::vector<NodeId>> EdgeDisjointPaths(
    const CsrView& csr, NodeId src, NodeId dst, FlowWorkspace& ws,
    std::size_t max_paths = static_cast<std::size_t>(-1),
    const FailureSet* failures = nullptr);

// Cardinality only (cheaper than materializing paths).
std::size_t EdgeConnectivity(const Graph& graph, NodeId src, NodeId dst,
                             const FailureSet* failures = nullptr);

std::size_t EdgeConnectivity(const CsrView& csr, NodeId src, NodeId dst,
                             FlowWorkspace& ws,
                             const FailureSet* failures = nullptr);

// Batched link-connectivity queries against one (graph, failure set). The
// flat arc arrays are built once in the constructor; each query restores the
// pristine capacities with a memcpy instead of re-scanning the edge list, so
// a batch of Q queries pays one arc build instead of Q. Every answer is
// bit-identical to the corresponding EdgeConnectivity call.
//
// Queries sorted by source get a second reuse level: pass
// `repeated_source = true` when more queries from the same src follow, and
// the first phase's level graph is cached and shared by the group.
class EdgeConnectivityBatch {
 public:
  EdgeConnectivityBatch(const CsrView& csr, FlowWorkspace& ws,
                        const FailureSet* failures = nullptr);

  std::size_t Connectivity(NodeId src, NodeId dst,
                           bool repeated_source = false);

 private:
  FlowWorkspace& ws_;
  const FailureSet* failures_;
  std::size_t nodes_;
  NodeId cached_src_ = kInvalidNode;  // source the cached levels belong to
  bool first_ = true;
};

}  // namespace dcn::graph
