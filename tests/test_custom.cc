#include "topology/custom.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "graph/bfs.h"
#include "metrics/bisection.h"
#include "metrics/report.h"
#include "routing/route.h"
#include "sim/flowsim.h"
#include "topology/cost_model.h"

namespace dcn::topo {
namespace {

constexpr const char* kDumbbell = R"(
# Two 2-server pods joined by a switch-to-switch... no: server-centric relay.
node 0 server left-a
node 1 server left-b
node 2 switch left-tor
node 3 server right-a
node 4 server right-b
node 5 switch right-tor
link 0 2
link 1 2
link 3 5
link 4 5
link 1 3   # server-server patch between the pods
)";

TEST(CustomTopologyTest, ParsesNodesLinksAndLabels) {
  const CustomTopology net = CustomTopology::FromString(kDumbbell, "Dumbbell");
  EXPECT_EQ(net.ServerCount(), 4u);
  EXPECT_EQ(net.SwitchCount(), 2u);
  EXPECT_EQ(net.LinkCount(), 5u);
  EXPECT_EQ(net.Describe(), "Dumbbell(servers=4,switches=2,links=5)");
  EXPECT_EQ(net.NodeLabel(0), "left-a");
  EXPECT_EQ(net.NodeLabel(2), "left-tor");
  EXPECT_TRUE(graph::IsConnected(net.Network()));
}

TEST(CustomTopologyTest, UnlabeledNodesGetGeneratedLabels) {
  const CustomTopology net = CustomTopology::FromString(
      "node 0 server\nnode 1 switch\nlink 0 1\n");
  EXPECT_EQ(net.NodeLabel(0), "server0");
  EXPECT_EQ(net.NodeLabel(1), "switch1");
}

TEST(CustomTopologyTest, RoutesAreShortestPaths) {
  const CustomTopology net = CustomTopology::FromString(kDumbbell);
  const routing::Route route{net.Route(0, 4)};
  EXPECT_EQ(routing::ValidateRoute(net.Network(), route), "");
  // 0 -> tor -> 1 -> 3 -> tor -> 4: 5 links, and BFS finds exactly that.
  EXPECT_EQ(route.LinkCount(), 5u);
  EXPECT_EQ(net.ServerPorts(), 2);  // servers 1 and 3 use two ports
}

TEST(CustomTopologyTest, WorksWithTheMetricsPipeline) {
  const CustomTopology net = CustomTopology::FromString(kDumbbell);
  // Bisection between id-halves {0,1} and {3,4}: the single patch link.
  EXPECT_EQ(metrics::MeasureBisection(net), 1);
  Rng rng{3};
  const metrics::TopologyReport report = metrics::Summarize(net, rng);
  EXPECT_EQ(report.servers, 4u);
  EXPECT_TRUE(report.connected);
  const topo::CapexReport cost = EvaluateCost(net);
  EXPECT_EQ(cost.links, 5u);

  const sim::FlowSimResult result = sim::MaxMinFairRates(
      net.Network(), {routing::Route{net.Route(0, 4)},
                      routing::Route{net.Route(1, 3)}});
  // Both flows share the 1-3 patch link.
  EXPECT_DOUBLE_EQ(result.rates[0], 0.5);
  EXPECT_DOUBLE_EQ(result.rates[1], 0.5);
}

TEST(CustomTopologyTest, CommentsAndBlankLinesIgnored) {
  const CustomTopology net = CustomTopology::FromString(
      "# header\n\nnode 0 server # trailing\nnode 1 server\n\nlink 0 1 # x\n");
  EXPECT_EQ(net.ServerCount(), 2u);
  EXPECT_EQ(net.LinkCount(), 1u);
}

TEST(CustomTopologyTest, MalformedInputsNameTheLine) {
  auto expect_error = [](const std::string& text, const std::string& needle) {
    try {
      CustomTopology::FromString(text);
      FAIL() << "expected InvalidArgument for: " << text;
    } catch (const dcn::InvalidArgument& e) {
      EXPECT_NE(std::string{e.what()}.find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error("node 1 server\n", "dense");
  expect_error("node 0 router\n", "server or switch");
  expect_error("node 0 server\nlink 0 5\n", "out of range");
  expect_error("node 0 server\nlink 0 0\n", "line 2");
  expect_error("frob 1 2\n", "unknown record");
  expect_error("node 0 server\nlink 0\n", "expected 'link");
  expect_error("link 0 1\n", "out of range");
  expect_error("node 0 server\nnode 1 server\nlink 0 1\nnode 2 server\n",
               "precede links");
  expect_error("node 0 switch\n", "at least one server");
}

TEST(CustomTopologyTest, UnreachableRouteThrows) {
  const CustomTopology net =
      CustomTopology::FromString("node 0 server\nnode 1 server\nnode 2 server\nlink 0 1\n");
  EXPECT_THROW(net.Route(0, 2), dcn::InvalidArgument);
  EXPECT_NO_THROW(net.Route(0, 1));
}

}  // namespace
}  // namespace dcn::topo
