#include "metrics/throughput_bounds.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "metrics/bisection.h"
#include "sim/flowsim.h"
#include "sim/traffic.h"
#include "topology/abccc.h"
#include "topology/fattree.h"

namespace dcn::metrics {
namespace {

using topo::Abccc;
using topo::AbcccParams;

std::vector<routing::Route> PermutationRoutes(const topo::Topology& net,
                                              dcn::Rng& rng) {
  std::vector<routing::Route> routes;
  for (const sim::Flow& flow : sim::PermutationTraffic(net, rng)) {
    routes.push_back(routing::Route{net.Route(flow.src, flow.dst)});
  }
  return routes;
}

TEST(ThroughputBoundsTest, HandComputedTinyCase) {
  // One 2-link route in ABCCC(2,0,2): 2 servers, 1 switch, 2 links.
  const Abccc net{AbcccParams{2, 0, 2}};
  const std::vector<routing::Route> routes{routing::Route{net.Route(0, 1)}};
  const ThroughputBounds bounds = ComputeBounds(net, routes, 2);
  // 2 links * 2 directions / mean length 2 = 2.
  EXPECT_DOUBLE_EQ(bounds.link_capacity_bound, 2.0);
  // 1 flow * 1 port (ServerPorts of the degenerate m=1 net is k+1 = 1).
  EXPECT_DOUBLE_EQ(bounds.nic_bound, 1.0);
  EXPECT_DOUBLE_EQ(bounds.bisection_bound, 4.0);
}

TEST(ThroughputBoundsTest, MeasuredThroughputRespectsEveryBound) {
  for (int c : {2, 3}) {
    const Abccc net{AbcccParams{4, 2, c}};
    dcn::Rng rng{11};
    const std::vector<routing::Route> routes = PermutationRoutes(net, rng);
    const sim::FlowSimResult result = sim::MaxMinFairRates(net.Network(), routes);
    const ThroughputBounds bounds =
        ComputeBounds(net, routes, MeasureBisection(net));
    EXPECT_LE(result.aggregate, bounds.link_capacity_bound + 1e-9) << "c=" << c;
    EXPECT_LE(result.aggregate, bounds.nic_bound + 1e-9) << "c=" << c;
    // Routing achieves a sane fraction of the fluid optimum.
    EXPECT_GT(result.aggregate, 0.2 * bounds.link_capacity_bound) << "c=" << c;
  }
}

TEST(ThroughputBoundsTest, BisectionBoundBindsBisectionTraffic) {
  const topo::FatTree net{8};
  dcn::Rng rng{13};
  std::vector<routing::Route> routes;
  for (const sim::Flow& flow : sim::BisectionTraffic(net, rng)) {
    routes.push_back(routing::Route{net.Route(flow.src, flow.dst)});
  }
  const std::int64_t cut = MeasureBisection(net);
  const sim::FlowSimResult result = sim::MaxMinFairRates(net.Network(), routes);
  const ThroughputBounds bounds = ComputeBounds(net, routes, cut);
  EXPECT_LE(result.aggregate, bounds.bisection_bound + 1e-9);
  EXPECT_GT(result.aggregate, 0.4 * bounds.bisection_bound);
}

TEST(ThroughputBoundsTest, EmptyAndDegenerateInputs) {
  const Abccc net{AbcccParams{2, 0, 2}};
  const ThroughputBounds none = ComputeBounds(net, {}, 1);
  EXPECT_DOUBLE_EQ(none.link_capacity_bound, 0.0);
  const ThroughputBounds empties =
      ComputeBounds(net, {routing::Route{}, routing::Route{{0}}}, 1);
  EXPECT_DOUBLE_EQ(empties.nic_bound, 0.0);
  EXPECT_THROW(ComputeBounds(net, {}, 1, 0.0), dcn::InvalidArgument);
}

TEST(ThroughputBoundsTest, CapacityScalesBounds) {
  const Abccc net{AbcccParams{4, 1, 2}};
  dcn::Rng rng{15};
  const std::vector<routing::Route> routes = PermutationRoutes(net, rng);
  const ThroughputBounds one = ComputeBounds(net, routes, 8, 1.0);
  const ThroughputBounds ten = ComputeBounds(net, routes, 8, 10.0);
  EXPECT_NEAR(ten.link_capacity_bound, 10.0 * one.link_capacity_bound, 1e-9);
  EXPECT_NEAR(ten.nic_bound, 10.0 * one.nic_bound, 1e-9);
  EXPECT_NEAR(ten.bisection_bound, 10.0 * one.bisection_bound, 1e-9);
}

}  // namespace
}  // namespace dcn::metrics
