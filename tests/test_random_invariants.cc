// Randomized invariant battery: many random configurations × seeds, one set
// of invariants. Catches interactions that the targeted tests' hand-picked
// parameters miss; failures print the exact configuration to reproduce.
#include <gtest/gtest.h>

#include <memory>

#include "common/parallel.h"
#include "common/rng.h"
#include "graph/bfs.h"
#include "metrics/bisection.h"
#include "metrics/path_metrics.h"
#include "metrics/resilience.h"
#include "routing/broadcast.h"
#include "routing/fault_routing.h"
#include "routing/forwarding.h"
#include "routing/route.h"
#include "sim/failures.h"
#include "sim/flowsim.h"
#include "sim/traffic.h"
#include "topology/abccc.h"
#include "topology/custom.h"
#include "topology/expansion.h"
#include "topology/gabccc.h"

namespace dcn {
namespace {

topo::AbcccParams RandomParams(Rng& rng) {
  topo::AbcccParams params;
  params.n = static_cast<int>(rng.NextInt(2, 5));
  params.k = static_cast<int>(rng.NextInt(0, 3));
  params.c = static_cast<int>(rng.NextInt(2, params.k + 3));
  return params;
}

class RandomInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomInvariants, FullBattery) {
  Rng rng{GetParam()};
  const topo::AbcccParams params = RandomParams(rng);
  SCOPED_TRACE("ABCCC(n=" + std::to_string(params.n) +
               ",k=" + std::to_string(params.k) +
               ",c=" + std::to_string(params.c) + ") seed " +
               std::to_string(GetParam()));
  const topo::Abccc net{params};

  // 1. Structure: counts already DCN_ASSERTed at build; connectivity here.
  ASSERT_TRUE(graph::IsConnected(net.Network()));

  // 2. Routing (source + hop-by-hop) on random pairs.
  const auto servers = net.Servers();
  for (int trial = 0; trial < 10; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    const routing::Route sourced{net.Route(src, dst)};
    ASSERT_EQ(routing::ValidateRoute(net.Network(), sourced), "");
    const routing::Route forwarded = routing::AbcccForwardRoute(net, src, dst);
    ASSERT_EQ(forwarded.Dst(), dst);
    ASSERT_LE(static_cast<int>(forwarded.LinkCount()), net.RouteLengthBound());
  }

  // 3. Broadcast covers everything with consistent depths.
  const graph::NodeId root = servers[rng.NextUint64(servers.size())];
  const routing::SpanningTree tree = routing::AbcccBroadcastTree(net, root);
  ASSERT_EQ(tree.CoveredCount(), net.ServerCount());

  // 4. Expansion embedding (guard size: skip when the expansion is huge).
  if (params.ServerTotal() < 2000) {
    topo::AbcccParams bigger = params;
    bigger.k = params.k + 1;
    const topo::Abccc expanded{bigger};
    ASSERT_TRUE(topo::VerifyAbcccExpansion(net, expanded));
  }

  // 5. Bisection: measured cut within [1, theory] (theory is the digit cut;
  //    odd radices can measure above floor-based theory, so only the lower
  //    side is tightened).
  const std::int64_t cut = metrics::MeasureBisection(net);
  ASSERT_GE(cut, 1);
  if (params.n % 2 == 0 && net.ServerCount() >= 4) {
    ASSERT_EQ(cut, static_cast<std::int64_t>(net.TheoreticalBisection()));
  }

  // 6. Fault routing success iff reachable, on a random failure pattern.
  const graph::FailureSet failures = sim::RandomFailures(net, 0.08, 0.08, 0.04, rng);
  for (int trial = 0; trial < 8; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    if (src == dst) continue;
    const routing::Route route =
        routing::AbcccFaultTolerantRoute(net, src, dst, failures, rng);
    const bool reachable =
        !graph::ShortestPath(net.Network(), src, dst, &failures).empty();
    ASSERT_EQ(!route.Empty(), reachable);
    if (!route.Empty()) {
      ASSERT_EQ(routing::ValidateRoute(net.Network(), route, &failures), "");
    }
  }

  // 7. Flow conservation: permutation rates positive and within capacity.
  Rng traffic_rng = rng.Fork();
  const std::vector<sim::Flow> flows = sim::PermutationTraffic(net, traffic_rng);
  std::vector<routing::Route> routes;
  for (const sim::Flow& flow : flows) {
    routes.push_back(routing::Route{net.Route(flow.src, flow.dst)});
  }
  const sim::FlowSimResult result = sim::MaxMinFairRates(net.Network(), routes);
  ASSERT_GT(result.min_rate, 0.0);
  ASSERT_LE(result.max_rate, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInvariants,
                         ::testing::Range<std::uint64_t>(1, 25));

// Mixed-radix battery: random radices per level, same invariants.
class RandomGeneralInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGeneralInvariants, StructureRoutingBroadcast) {
  Rng rng{GetParam() * 977 + 3};
  topo::GeneralAbcccParams params;
  const int levels = static_cast<int>(rng.NextInt(1, 3));
  for (int level = 0; level < levels; ++level) {
    params.radices.push_back(static_cast<int>(rng.NextInt(2, 5)));
  }
  params.c = static_cast<int>(rng.NextInt(2, levels + 2));
  std::string desc = "radices:";
  for (int radix : params.radices) desc += " " + std::to_string(radix);
  SCOPED_TRACE(desc + " c=" + std::to_string(params.c) + " seed " +
               std::to_string(GetParam()));

  const topo::GeneralAbccc net{params};
  ASSERT_TRUE(graph::IsConnected(net.Network()));

  const auto servers = net.Servers();
  for (int trial = 0; trial < 10; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    const routing::Route route{net.Route(src, dst)};
    ASSERT_EQ(routing::ValidateRoute(net.Network(), route), "");
    const routing::Route forwarded = routing::AbcccForwardRoute(net, src, dst);
    ASSERT_EQ(forwarded.Dst(), dst);
  }

  const routing::SpanningTree tree = routing::AbcccBroadcastTree(
      net, servers[rng.NextUint64(servers.size())]);
  ASSERT_EQ(tree.CoveredCount(), net.ServerCount());

  // Slice expansion of a random level embeds.
  const int level = static_cast<int>(rng.NextUint64(params.radices.size()));
  if (params.ServerTotal() < 1500) {
    topo::GeneralAbcccParams bigger = params;
    ++bigger.radices[level];
    const topo::GeneralAbccc expanded{bigger};
    ASSERT_TRUE(topo::VerifySliceExpansion(net, expanded));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGeneralInvariants,
                         ::testing::Range<std::uint64_t>(1, 17));

// Parallel-vs-serial battery: random `custom` topologies (no algebraic
// structure to lean on), every parallelized metric cross-checked bit-exact
// against the DCN_THREADS=1 path at an awkward thread count.
class RandomParallelInvariants : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void TearDown() override { SetThreadCount(0); }
};

// A random connected server/switch plant in the custom edge-list format:
// a random spanning tree plus extra chords.
std::string RandomPlant(Rng& rng) {
  const std::size_t nodes = static_cast<std::size_t>(rng.NextInt(12, 40));
  std::string text;
  for (std::size_t i = 0; i < nodes; ++i) {
    // Nodes 0 and 1 are forced servers so sampled metrics always have pairs.
    const bool server = i < 2 || rng.NextBernoulli(0.6);
    text += "node " + std::to_string(i) + (server ? " server\n" : " switch\n");
  }
  for (std::size_t i = 1; i < nodes; ++i) {
    text += "link " + std::to_string(i) + " " +
            std::to_string(rng.NextUint64(i)) + "\n";
  }
  const std::size_t chords = static_cast<std::size_t>(rng.NextInt(0, 12));
  for (std::size_t e = 0; e < chords; ++e) {
    const std::size_t u = rng.NextUint64(nodes);
    const std::size_t v = rng.NextUint64(nodes);
    if (u == v) continue;
    text += "link " + std::to_string(u) + " " + std::to_string(v) + "\n";
  }
  return text;
}

TEST_P(RandomParallelInvariants, ParallelMetricsMatchSerialBitForBit) {
  Rng rng{GetParam() * 7919 + 31};
  const std::string plant = RandomPlant(rng);
  SCOPED_TRACE("seed " + std::to_string(GetParam()) + " plant:\n" + plant);
  const topo::CustomTopology net = topo::CustomTopology::FromString(plant);
  const std::uint64_t metric_seed = rng();

  struct Results {
    metrics::ExactPathStats exact;
    metrics::SampledPathStats sampled;
    metrics::PairCutStats cuts;
    double disconnection = 0.0;
    double worst_switch = 0.0;
  };
  const auto measure = [&] {
    Results r;
    r.exact = metrics::ExactServerPathStats(net);
    Rng metric_rng{metric_seed};
    r.sampled = metrics::SamplePathStats(net, 4, 6, metric_rng);
    r.cuts = metrics::SampledPairCuts(net, 8, metric_rng);
    graph::FailureSet failures{net.Network()};
    failures.KillNode(net.Servers()[0]);
    r.disconnection =
        metrics::PairDisconnectionFraction(net, failures, 48, metric_rng);
    if (net.SwitchCount() > 0) {
      r.worst_switch =
          metrics::WorstSingleSwitchDisconnection(net, 24, 4, metric_rng);
    }
    return r;
  };

  SetThreadCount(1);
  const Results serial = measure();
  SetThreadCount(3);  // odd count, does not divide most chunk counts
  const Results parallel = measure();

  ASSERT_EQ(serial.exact.diameter, parallel.exact.diameter);
  ASSERT_EQ(serial.exact.average, parallel.exact.average);
  ASSERT_EQ(serial.exact.pairs, parallel.exact.pairs);
  ASSERT_EQ(serial.exact.connected, parallel.exact.connected);
  ASSERT_EQ(serial.sampled.shortest.Buckets(), parallel.sampled.shortest.Buckets());
  ASSERT_EQ(serial.sampled.routed.Buckets(), parallel.sampled.routed.Buckets());
  ASSERT_EQ(serial.sampled.mean_stretch, parallel.sampled.mean_stretch);
  ASSERT_EQ(serial.cuts.cuts.Buckets(), parallel.cuts.cuts.Buckets());
  ASSERT_EQ(serial.cuts.min_cut, parallel.cuts.min_cut);
  ASSERT_EQ(serial.cuts.mean_cut, parallel.cuts.mean_cut);
  ASSERT_EQ(serial.disconnection, parallel.disconnection);
  ASSERT_EQ(serial.worst_switch, parallel.worst_switch);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomParallelInvariants,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace dcn
