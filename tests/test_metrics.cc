#include <gtest/gtest.h>

#include "common/error.h"

#include <sstream>

#include "common/rng.h"
#include "metrics/bisection.h"
#include "metrics/path_metrics.h"
#include "metrics/report.h"
#include "topology/abccc.h"
#include "topology/bccc.h"
#include "topology/bcube.h"
#include "topology/fattree.h"

namespace dcn::metrics {
namespace {

using topo::Abccc;
using topo::AbcccParams;
using topo::Bcube;
using topo::BcubeParams;
using topo::FatTree;
using topo::FatTreeParams;

TEST(PathMetricsTest, ExactStatsOnBcubeMatchTheory) {
  const Bcube net{BcubeParams{2, 1}};  // 4 servers, distances 2*hamming
  const ExactPathStats stats = ExactServerPathStats(net);
  EXPECT_TRUE(stats.connected);
  EXPECT_EQ(stats.diameter, 4);
  EXPECT_EQ(stats.pairs, 4u * 3u);
  // Distances: each server sees two at distance 2 and one at distance 4.
  EXPECT_DOUBLE_EQ(stats.average, (2.0 + 2.0 + 4.0) / 3.0);
}

TEST(PathMetricsTest, ExactStatsFlagDisconnection) {
  // A topology is always connected; test the flag through a raw wrapper is
  // not possible here, so assert the connected case explicitly instead.
  const Abccc net{AbcccParams{2, 1, 2}};
  EXPECT_TRUE(ExactServerPathStats(net).connected);
}

TEST(PathMetricsTest, SampledDiameterBoundedByExact) {
  const Abccc net{AbcccParams{3, 2, 2}};
  const ExactPathStats exact = ExactServerPathStats(net);
  dcn::Rng rng{51};
  const SampledPathStats sampled = SamplePathStats(net, 8, 20, rng);
  EXPECT_LE(sampled.diameter_lower_bound, exact.diameter);
  // Sampled shortest lengths must lie within the exact envelope.
  EXPECT_GE(sampled.shortest.Min(), 1);
  EXPECT_LE(sampled.shortest.Max(), exact.diameter);
  // Native routing is never shorter than shortest paths.
  EXPECT_GE(sampled.mean_stretch, 1.0);
  EXPECT_GE(sampled.routed.Mean(), sampled.shortest.Mean());
}

TEST(PathMetricsTest, BcubeRoutingHasUnitStretch) {
  const Bcube net{BcubeParams{4, 1}};
  dcn::Rng rng{52};
  const SampledPathStats sampled = SamplePathStats(net, 6, 30, rng);
  EXPECT_DOUBLE_EQ(sampled.mean_stretch, 1.0);
}

TEST(PathMetricsTest, SampleCountsRespected) {
  const Abccc net{AbcccParams{2, 1, 2}};
  dcn::Rng rng{53};
  const SampledPathStats sampled = SamplePathStats(net, 3, 7, rng);
  EXPECT_EQ(sampled.shortest.Count(), 21);
  EXPECT_EQ(sampled.routed.Count(), 21);
  EXPECT_THROW(SamplePathStats(net, 0, 7, rng), dcn::InvalidArgument);
}

TEST(BisectionTest, EvenRadixCubesMatchTheory) {
  for (int n : {2, 4}) {
    const Bcube bcube{BcubeParams{n, 1}};
    EXPECT_EQ(MeasureBisection(bcube),
              static_cast<std::int64_t>(bcube.TheoreticalBisection()))
        << "BCube n=" << n;
    const Abccc abccc{AbcccParams{n, 1, 2}};
    EXPECT_EQ(MeasureBisection(abccc),
              static_cast<std::int64_t>(abccc.TheoreticalBisection()))
        << "ABCCC n=" << n;
  }
}

TEST(BisectionTest, FatTreeIsFullBisection) {
  const FatTree net{FatTreeParams{4}};
  EXPECT_EQ(MeasureBisection(net), 8);
}

TEST(BisectionTest, FailuresOnlyReduceTheCut) {
  const Abccc net{AbcccParams{4, 1, 2}};
  const std::int64_t healthy = MeasureBisection(net);
  graph::FailureSet failures{net.Network()};
  // Kill one level-1 switch (the bisection plane).
  failures.KillNode(
      net.LevelSwitchAt(1, topo::Digits{0, 0}));
  const std::int64_t degraded = MeasureBisection(net, &failures);
  EXPECT_LT(degraded, healthy);
  EXPECT_GT(degraded, 0);
}

TEST(BisectionTest, OddRadixStillHasPositiveCut) {
  const Abccc net{AbcccParams{3, 1, 2}};
  EXPECT_GT(MeasureBisection(net), 0);
}

TEST(ReportTest, SummarizeAgreesWithDirectMeasurements) {
  const Abccc net{AbcccParams{4, 1, 2}};
  dcn::Rng rng{55};
  const TopologyReport report = Summarize(net, rng);
  EXPECT_EQ(report.description, net.Describe());
  EXPECT_EQ(report.servers, net.ServerCount());
  EXPECT_EQ(report.switches, net.SwitchCount());
  EXPECT_EQ(report.links, net.LinkCount());
  EXPECT_EQ(report.server_ports, 2);
  EXPECT_TRUE(report.connected);
  EXPECT_EQ(report.bisection, MeasureBisection(net));
  EXPECT_DOUBLE_EQ(report.bisection_theory, net.TheoreticalBisection());
  EXPECT_GE(report.routing_stretch, 1.0);
  EXPECT_GT(report.aspl, 0.0);
  EXPECT_LE(report.diameter, net.RouteLengthBound());
  EXPECT_GT(report.capex.total_usd, 0.0);
}

TEST(ReportTest, DeterministicGivenSeed) {
  const Abccc net{AbcccParams{4, 1, 2}};
  dcn::Rng a{7}, b{7};
  const TopologyReport ra = Summarize(net, a);
  const TopologyReport rb = Summarize(net, b);
  EXPECT_DOUBLE_EQ(ra.aspl, rb.aspl);
  EXPECT_DOUBLE_EQ(ra.routing_stretch, rb.routing_stretch);
  EXPECT_EQ(ra.diameter, rb.diameter);
}

TEST(ReportTest, PrintMentionsTheKeyNumbers) {
  const Abccc net{AbcccParams{4, 1, 2}};
  dcn::Rng rng{9};
  const TopologyReport report = Summarize(net, rng);
  std::ostringstream out;
  PrintReport(out, report);
  const std::string text = out.str();
  EXPECT_NE(text.find("ABCCC(n=4,k=1,c=2)"), std::string::npos);
  EXPECT_NE(text.find("servers:      32"), std::string::npos);
  EXPECT_NE(text.find("bisection:    8 (theory 8)"), std::string::npos);
}

}  // namespace
}  // namespace dcn::metrics
