#include "topology/dcell.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "common/error.h"
#include "common/rng.h"
#include "graph/bfs.h"
#include "routing/route.h"

namespace dcn::topo {
namespace {

TEST(DcellParamsTest, RecurrenceAndValidation) {
  EXPECT_EQ((DcellParams{4, 0}.ServerTotal()), 4u);
  EXPECT_EQ((DcellParams{4, 1}.ServerTotal()), 20u);    // 4*5
  EXPECT_EQ((DcellParams{4, 2}.ServerTotal()), 420u);   // 20*21
  EXPECT_EQ((DcellParams{2, 2}.ServerTotal()), 42u);    // 2 -> 6 -> 42
  EXPECT_EQ((DcellParams{3, 1}.ServerTotal()), 12u);
  EXPECT_THROW((DcellParams{1, 1}.Validate()), dcn::InvalidArgument);
  EXPECT_THROW((DcellParams{2, -1}.Validate()), dcn::InvalidArgument);
  EXPECT_THROW((DcellParams{2, 5}.Validate()), dcn::InvalidArgument);
}

class DcellSweep : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  DcellParams P() const {
    const auto [n, k] = GetParam();
    return DcellParams{n, k};
  }
};

TEST_P(DcellSweep, CountsMatchFormulas) {
  const DcellParams p = P();
  const Dcell net{p};
  EXPECT_EQ(net.ServerCount(), p.ServerTotal());
  EXPECT_EQ(net.SwitchCount(), p.SwitchTotal());
  EXPECT_EQ(net.LinkCount(), p.LinkTotal());
}

TEST_P(DcellSweep, ServerDegreeIsKPlusOne) {
  const DcellParams p = P();
  const Dcell net{p};
  for (const graph::NodeId server : net.Servers()) {
    EXPECT_EQ(net.Network().Degree(server), static_cast<std::size_t>(p.k + 1));
  }
  EXPECT_EQ(net.ServerPorts(), p.k + 1);
}

TEST_P(DcellSweep, MiniSwitchDegreeIsN) {
  const DcellParams p = P();
  const Dcell net{p};
  const graph::Graph& g = net.Network();
  for (graph::NodeId node = 0; static_cast<std::size_t>(node) < g.NodeCount();
       ++node) {
    if (g.IsSwitch(node)) {
      EXPECT_EQ(g.Degree(node), static_cast<std::size_t>(p.n));
    }
  }
}

TEST_P(DcellSweep, Connected) {
  const Dcell net{P()};
  EXPECT_TRUE(graph::IsConnected(net.Network()));
}

TEST_P(DcellSweep, RoutesValidAndWithinBound) {
  const Dcell net{P()};
  dcn::Rng rng{55};
  const auto servers = net.Servers();
  for (int trial = 0; trial < 60; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    const routing::Route route{net.Route(src, dst)};
    EXPECT_EQ(routing::ValidateRoute(net.Network(), route), "")
        << net.Describe() << " " << src << "->" << dst;
    EXPECT_LE(static_cast<int>(route.LinkCount()), net.RouteLengthBound());
    EXPECT_EQ(route.Src(), src);
    EXPECT_EQ(route.Dst(), dst);
  }
}

TEST_P(DcellSweep, RouteNeverShorterThanBfs) {
  const Dcell net{P()};
  dcn::Rng rng{66};
  const auto servers = net.Servers();
  for (int trial = 0; trial < 10; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const std::vector<int> dist = graph::BfsDistances(net.Network(), src);
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    const routing::Route route{net.Route(src, dst)};
    EXPECT_GE(static_cast<int>(route.LinkCount()), dist[dst]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DcellSweep,
                         ::testing::Values(std::tuple{2, 0}, std::tuple{2, 1},
                                           std::tuple{2, 2}, std::tuple{3, 1},
                                           std::tuple{3, 2}, std::tuple{4, 1},
                                           std::tuple{4, 2}, std::tuple{6, 1}));

TEST(DcellTest, SubCellIndices) {
  const Dcell net{DcellParams{4, 1}};  // 5 sub-cells of 4 servers
  // Server 13 = sub-cell 3, local 1.
  EXPECT_EQ(net.SubCellAt(13, 1), 3u);
  EXPECT_EQ(net.SubCellAt(13, 0), 1u);
  EXPECT_THROW(net.SubCellAt(13, 2), dcn::InvalidArgument);
}

TEST(DcellTest, Level1LinkRule) {
  // In DCell(4,1): sub-cell i's server j-1 links to sub-cell j's server i.
  const Dcell net{DcellParams{4, 1}};
  const graph::Graph& g = net.Network();
  // (i=0, j=1): server 0 of sub-cell 0 (uid 0) <-> server 0 of sub-cell 1 (uid 4).
  EXPECT_TRUE(g.Adjacent(0, 4));
  // (i=2, j=4): server uid 2*4+3 = 11 <-> uid 4*4+2 = 18.
  EXPECT_TRUE(g.Adjacent(11, 18));
  EXPECT_FALSE(g.Adjacent(0, 5));
}

TEST(DcellTest, SameCellRouteGoesThroughMiniSwitch) {
  const Dcell net{DcellParams{4, 1}};
  const routing::Route route{net.Route(0, 2)};
  ASSERT_EQ(route.hops.size(), 3u);
  EXPECT_EQ(route.hops[1], net.SwitchOf(0));
  EXPECT_EQ(net.SwitchOf(0), net.SwitchOf(2));
}

TEST(DcellTest, SelfRouteTrivial) {
  const Dcell net{DcellParams{4, 1}};
  EXPECT_EQ(net.Route(7, 7), std::vector<graph::NodeId>{7});
}

TEST(DcellTest, DescribeAndLabels) {
  const Dcell net{DcellParams{4, 1}};
  EXPECT_EQ(net.Describe(), "DCell(n=4,k=1)");
  EXPECT_EQ(net.Name(), "DCell");
  EXPECT_EQ(net.NodeLabel(13), "[3,1]");
}

}  // namespace
}  // namespace dcn::topo
