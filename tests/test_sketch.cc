// obs/sketch.h: the quantile sketch honors its relative rank-error bound
// against an exact sorted reference, merges are bit-identical in any order
// and at any thread count, the heavy-hitter summary keeps the Space-Saving
// count-error guarantee against exact tallies with deterministic
// tie-breaking, and the simulators' always-on telemetry (packetsim result
// sketches, fluid's FCT sketch) matches the exact per-flow data the flight
// recorder exports.
#include "obs/sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "obs/flight.h"
#include "obs/obs.h"
#include "routing/route.h"
#include "sim/fluid.h"
#include "sim/packetsim.h"
#include "sim/traffic.h"
#include "topology/abccc.h"

namespace dcn::obs {
namespace {

using graph::Graph;
using graph::NodeKind;
using routing::Route;

class SketchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    flight::Disable();
    Reset();
  }
  void TearDown() override {
    flight::Disable();
    Reset();
    SetThreadCount(0);
  }
};

// Exact rank-ceil(q * n) order statistic of `values` (the quantity
// QuantileSketch::Quantile estimates).
double ExactQuantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values.size())));
  return values[std::max<std::size_t>(rank, 1) - 1];
}

// A deterministic long-tailed stream: exponential spacings compounded into
// values spanning several orders of magnitude.
std::vector<double> LongTailedStream(std::uint64_t seed, std::size_t n) {
  Rng rng{seed};
  std::vector<double> values;
  values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.NextExponential(1.0);
    values.push_back(0.05 + u * u * 100.0);
  }
  return values;
}

TEST_F(SketchTest, QuantileWithinRelativeBoundOfExactReference) {
  const std::vector<double> values = LongTailedStream(0x5eed, 20000);
  QuantileSketch sketch;
  for (double v : values) sketch.Add(v);
  ASSERT_EQ(sketch.Count(), values.size());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = ExactQuantile(values, q);
    const double estimate = sketch.Quantile(q);
    EXPECT_NEAR(estimate, exact, sketch.RelativeAccuracy() * exact + 1e-12)
        << "q=" << q;
  }
  EXPECT_EQ(sketch.Min(), *std::min_element(values.begin(), values.end()));
  EXPECT_EQ(sketch.Max(), *std::max_element(values.begin(), values.end()));
}

TEST_F(SketchTest, TinyValuesLandInTheExactZeroBucket) {
  QuantileSketch sketch;
  sketch.Add(0.0);
  sketch.Add(QuantileSketch::kMinTrackable / 2);
  sketch.Add(5.0);
  EXPECT_EQ(sketch.Count(), 3u);
  EXPECT_EQ(sketch.ZeroCount(), 2u);
  EXPECT_EQ(sketch.Quantile(0.5), 0.0);
  EXPECT_NEAR(sketch.Quantile(1.0), 5.0, 5.0 * sketch.RelativeAccuracy());
}

TEST_F(SketchTest, MergeIsBitIdenticalInAnyOrder) {
  const std::vector<double> values = LongTailedStream(0xabcd, 9000);
  QuantileSketch whole;
  for (double v : values) whole.Add(v);

  // Three parts merged in two different orders, versus the single-pass
  // sketch: identical buckets, so identical readouts to the last bit.
  QuantileSketch parts[3];
  for (std::size_t i = 0; i < values.size(); ++i) parts[i % 3].Add(values[i]);
  QuantileSketch ab = parts[0];
  ab.Merge(parts[1]);
  ab.Merge(parts[2]);
  QuantileSketch cb = parts[2];
  cb.Merge(parts[1]);
  cb.Merge(parts[0]);
  for (const QuantileSketch& merged : {ab, cb}) {
    EXPECT_EQ(merged.Count(), whole.Count());
    EXPECT_EQ(merged.Min(), whole.Min());
    EXPECT_EQ(merged.Max(), whole.Max());
    const auto lhs = merged.Buckets();
    const auto rhs = whole.Buckets();
    ASSERT_EQ(lhs.size(), rhs.size());
    for (std::size_t i = 0; i < lhs.size(); ++i) {
      EXPECT_EQ(lhs[i].index, rhs[i].index);
      EXPECT_EQ(lhs[i].count, rhs[i].count);
    }
    for (double q : {0.5, 0.99, 0.999}) {
      EXPECT_EQ(merged.Quantile(q), whole.Quantile(q));
    }
  }
}

TEST_F(SketchTest, SketchMetricIsThreadCountInvariant) {
  auto run = [](int threads) {
    SetThreadCount(threads);
    Reset();
    static SketchMetric& metric = GetQuantileSketch("test/sketch_invariance");
    ParallelFor(5000, 13, [](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        metric.Observe(0.1 + static_cast<double>(i % 257));
      }
    });
    return metric.Merged();
  };
  const QuantileSketch at1 = run(1);
  for (int threads : {3, 7}) {
    const QuantileSketch at_n = run(threads);
    EXPECT_EQ(at_n.Count(), at1.Count());
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
      EXPECT_EQ(at_n.Quantile(q), at1.Quantile(q)) << "threads=" << threads;
    }
    EXPECT_EQ(at_n.ApproxMean(), at1.ApproxMean());
  }
}

TEST_F(SketchTest, HeavyHittersKeepTheSpaceSavingGuarantee) {
  // Zipf-ish skew over 200 keys into a capacity-16 summary.
  Rng rng{0x70b5};
  std::map<std::int64_t, std::uint64_t> exact;
  HeavyHitters hitters{16};
  for (std::size_t i = 0; i < 30000; ++i) {
    const auto r = static_cast<double>(rng.NextUint64(1u << 20)) /
                   static_cast<double>(1u << 20);
    const auto key = static_cast<std::int64_t>(200.0 * r * r * r);
    ++exact[key];
    hitters.Add(key);
  }
  const std::uint64_t total = hitters.TotalWeight();
  EXPECT_EQ(total, 30000u);
  EXPECT_LE(hitters.Floor(), total / hitters.Capacity());
  for (const HeavyHitters::Entry& entry : hitters.Top()) {
    const std::uint64_t truth = exact[entry.key];
    EXPECT_LE(truth, entry.count);
    EXPECT_GE(truth + entry.error, entry.count);
    EXPECT_LE(entry.error, total / hitters.Capacity());
  }
  // Every key whose true weight beats the guarantee threshold is tracked.
  std::vector<std::int64_t> tracked;
  for (const auto& entry : hitters.Top()) tracked.push_back(entry.key);
  for (const auto& [key, truth] : exact) {
    if (truth > total / hitters.Capacity()) {
      EXPECT_NE(std::find(tracked.begin(), tracked.end(), key), tracked.end())
          << "heavy key " << key << " missing";
    }
  }
}

TEST_F(SketchTest, HeavyHittersTieBreakByKeyIsDeterministic) {
  HeavyHitters hitters{2};
  hitters.Add(10, 5);
  hitters.Add(20, 3);
  hitters.Add(30, 3);  // evicts the min-count entry with the LARGEST key (20)
  const auto top = hitters.Top();
  ASSERT_EQ(top.size(), 2u);
  // Key 30 inherited the evicted count (3) plus its own weight, with the
  // inherited count as its error bound: 3 <= true(30) <= 6.
  EXPECT_EQ(top[0].key, 30);
  EXPECT_EQ(top[0].count, 6u);
  EXPECT_EQ(top[0].error, 3u);
  EXPECT_EQ(top[1].key, 10);
  EXPECT_EQ(top[1].count, 5u);
  EXPECT_EQ(top[1].error, 0u);
  // Equal counts order by ascending key.
  HeavyHitters ties{4};
  ties.Add(7, 2);
  ties.Add(3, 2);
  ties.Add(5, 2);
  const auto tied = ties.Top();
  ASSERT_EQ(tied.size(), 3u);
  EXPECT_EQ(tied[0].key, 3);
  EXPECT_EQ(tied[1].key, 5);
  EXPECT_EQ(tied[2].key, 7);
}

TEST_F(SketchTest, HeavyHittersMergeIsCommutative) {
  HeavyHitters a{4};
  HeavyHitters b{4};
  Rng rng{0x3141};
  for (std::size_t i = 0; i < 500; ++i) {
    a.Add(static_cast<std::int64_t>(rng.NextUint64(12)));
    b.Add(static_cast<std::int64_t>(rng.NextUint64(9)));
  }
  HeavyHitters ab = a;
  ab.Merge(b);
  HeavyHitters ba = b;
  ba.Merge(a);
  EXPECT_EQ(ab.TotalWeight(), ba.TotalWeight());
  EXPECT_EQ(ab.Floor(), ba.Floor());
  const auto lhs = ab.Top();
  const auto rhs = ba.Top();
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_EQ(lhs[i].key, rhs[i].key);
    EXPECT_EQ(lhs[i].count, rhs[i].count);
    EXPECT_EQ(lhs[i].error, rhs[i].error);
  }
}

// ---------------------------------------------------------------------------
// Simulator telemetry.

TEST_F(SketchTest, PacketsimTelemetryIsThreadCountInvariant) {
  const topo::Abccc net{topo::AbcccParams{2, 1, 2}};
  Rng traffic_rng{0x7e1e};
  const std::vector<Route> routes =
      sim::NativeRoutes(net, sim::PermutationTraffic(net, traffic_rng));
  const Graph& g = net.Network();
  sim::PacketSimConfig config;
  config.duration = 120.0;
  config.warmup = 20.0;
  config.offered_load = 0.9;

  auto run = [&](int threads) {
    SetThreadCount(threads);
    Reset();
    return sim::RunPacketSim(g, routes, config);
  };
  const sim::PacketSimResult at1 = run(1);
  EXPECT_GT(at1.telemetry.latency.Count(), 0u);
  EXPECT_EQ(at1.telemetry.latency.Count(), at1.delivered);
  EXPECT_GE(at1.telemetry.slowdown.Quantile(0.5), 1.0);
  for (int threads : {3, 7}) {
    const sim::PacketSimResult at_n = run(threads);
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
      EXPECT_EQ(at_n.telemetry.latency.Quantile(q),
                at1.telemetry.latency.Quantile(q))
          << "threads=" << threads;
      EXPECT_EQ(at_n.telemetry.slowdown.Quantile(q),
                at1.telemetry.slowdown.Quantile(q))
          << "threads=" << threads;
    }
    const auto links1 = at1.telemetry.hot_links.Top();
    const auto linksN = at_n.telemetry.hot_links.Top();
    ASSERT_EQ(linksN.size(), links1.size());
    for (std::size_t i = 0; i < links1.size(); ++i) {
      EXPECT_EQ(linksN[i].key, links1[i].key);
      EXPECT_EQ(linksN[i].count, links1[i].count);
    }
    const auto flows1 = at1.telemetry.elephant_flows.Top();
    const auto flowsN = at_n.telemetry.elephant_flows.Top();
    ASSERT_EQ(flowsN.size(), flows1.size());
    for (std::size_t i = 0; i < flows1.size(); ++i) {
      EXPECT_EQ(flowsN[i].key, flows1[i].key);
      EXPECT_EQ(flowsN[i].count, flows1[i].count);
    }
  }
  // The registry saw the same merge (flushed from the calling thread).
  const auto rows = TakeSketchSnapshot();
  bool found = false;
  for (const SketchRow& row : rows) {
    if (row.name == "packetsim/latency") {
      found = true;
      EXPECT_EQ(row.sketch.Count(), at1.telemetry.latency.Count());
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(SketchTest, FctSummarySketchAgreesWithPerFlowCsvRecords) {
  // One fabric, several flows of mixed size, one unroutable: the bounded
  // --fct-summary sketch and the per-flow --fct-csv records must tell the
  // same story.
  Graph g;
  g.AddNode(NodeKind::kServer);  // 0
  g.AddNode(NodeKind::kServer);  // 1
  g.AddNode(NodeKind::kSwitch);  // 2
  g.AddNode(NodeKind::kServer);  // 3
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  std::vector<Route> routes{Route{{0, 2, 3}}, Route{{1, 2, 3}}, Route{{0, 2, 1}},
                            Route{}};
  std::vector<double> bytes{8.0, 4.0, 2.0, 1.0};

  flight::Config config;
  config.fct = true;
  config.fct_summary = true;
  flight::Enable(config);
  sim::FluidCompletionTimes(g, routes, bytes);
  const std::vector<flight::RunSnapshot> runs = flight::TakeRunsSnapshot();
  ASSERT_EQ(runs.size(), 1u);
  const flight::RunSnapshot& run = runs[0];

  // Exact quantiles from the per-flow records (the CSV export's source).
  std::vector<double> finite;
  std::uint64_t unroutable = 0;
  for (const flight::FlowRecord& flow : run.flows) {
    if (std::isfinite(flow.value)) {
      finite.push_back(flow.value);
    } else {
      ++unroutable;
    }
  }
  ASSERT_EQ(finite.size(), 3u);
  EXPECT_EQ(unroutable, 1u);
  EXPECT_EQ(run.unroutable, unroutable);
  EXPECT_EQ(run.fct_sketch.Count(), finite.size());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = ExactQuantile(finite, q);
    EXPECT_NEAR(run.fct_sketch.Quantile(q), exact,
                run.fct_sketch.RelativeAccuracy() * exact + 1e-12)
        << "q=" << q;
  }

  // The summary table renders without the per-flow materialization.
  std::ostringstream summary;
  flight::WriteFctSummary(summary, runs);
  EXPECT_NE(summary.str().find("fluid"), std::string::npos);
  EXPECT_NE(summary.str().find("p999"), std::string::npos);
}

TEST_F(SketchTest, FctSummaryAloneKeepsPerFlowRecordsOff) {
  Graph g;
  g.AddNode(NodeKind::kServer);
  g.AddNode(NodeKind::kServer);
  g.AddEdge(0, 1);
  flight::Config config;
  config.fct_summary = true;  // no per-flow CSV materialization
  flight::Enable(config);
  sim::FluidCompletionTimes(g, {Route{{0, 1}}, Route{}}, {4.0, 2.0});
  const std::vector<flight::RunSnapshot> runs = flight::TakeRunsSnapshot();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_TRUE(runs[0].flows.empty());  // bounded memory: sketch only
  EXPECT_EQ(runs[0].fct_sketch.Count(), 1u);
  EXPECT_EQ(runs[0].unroutable, 1u);
  const double fct = runs[0].fct_sketch.Quantile(1.0);
  EXPECT_NEAR(fct, 4.0, 4.0 * runs[0].fct_sketch.RelativeAccuracy());
}

}  // namespace
}  // namespace dcn::obs
