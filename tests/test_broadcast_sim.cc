#include "sim/broadcast_sim.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "routing/broadcast.h"
#include "topology/abccc.h"
#include "topology/bcube.h"

namespace dcn::sim {
namespace {

using topo::Abccc;
using topo::AbcccParams;

TEST(BroadcastSimTest, LowRateCompletesEveryMessageNearTreeDepth) {
  const Abccc net{AbcccParams{4, 1, 2}};
  const routing::SpanningTree tree = routing::AbcccBroadcastTree(net, 0);
  BroadcastSimConfig config;
  config.message_rate = 0.01;
  config.duration = 5000;
  config.warmup = 500;
  const BroadcastSimResult result = RunBroadcastSim(net.Network(), tree, config);
  EXPECT_GT(result.measured, 20u);
  EXPECT_DOUBLE_EQ(result.CompleteFraction(), 1.0);
  EXPECT_EQ(result.copies_dropped, 0u);
  // Completion is bounded below by the tree depth (in links ~ service times)
  // and stays close to it when the fabric is idle.
  EXPECT_GE(result.completion_latency.Min(), tree.MaxDepth());
  EXPECT_LT(result.completion_latency.Mean(), tree.MaxDepth() + 8);
  // Per-receiver latency is at most completion latency.
  EXPECT_LE(result.delivery_latency.Mean(), result.completion_latency.Mean());
}

TEST(BroadcastSimTest, OverloadDropsCopiesAndBreaksCompleteness) {
  const Abccc net{AbcccParams{4, 1, 2}};
  const routing::SpanningTree tree = routing::AbcccBroadcastTree(net, 0);
  BroadcastSimConfig config;
  // The root's first link must carry every message once; rate > 1/fanout
  // saturates the replication stage.
  config.message_rate = 1.5;
  config.duration = 600;
  config.warmup = 100;
  config.queue_capacity = 4;
  const BroadcastSimResult result = RunBroadcastSim(net.Network(), tree, config);
  EXPECT_GT(result.copies_dropped, 0u);
  EXPECT_LT(result.CompleteFraction(), 0.7);
  EXPECT_GE(result.max_link_utilization, 0.9);
}

TEST(BroadcastSimTest, DeterministicGivenSeed) {
  const topo::Bcube net{topo::BcubeParams{3, 1}};
  const routing::SpanningTree tree = routing::BcubeBroadcastTree(net, 2);
  BroadcastSimConfig config;
  config.message_rate = 0.3;
  config.duration = 400;
  const BroadcastSimResult a = RunBroadcastSim(net.Network(), tree, config);
  const BroadcastSimResult b = RunBroadcastSim(net.Network(), tree, config);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.copies_dropped, b.copies_dropped);
}

TEST(BroadcastSimTest, ThroughputCeilingIsRootFanout) {
  // The root transmits each message once per child segment; its busiest
  // outgoing link caps the sustainable message rate at 1 msg per service
  // time. Just below that, completion still holds; just above, it collapses.
  const topo::Bcube net{topo::BcubeParams{4, 1}};
  const routing::SpanningTree tree = routing::BcubeBroadcastTree(net, 0);
  BroadcastSimConfig below;
  below.message_rate = 0.15;
  below.duration = 1500;
  below.warmup = 300;
  const BroadcastSimResult ok = RunBroadcastSim(net.Network(), tree, below);
  EXPECT_GT(ok.CompleteFraction(), 0.98);
  BroadcastSimConfig above = below;
  above.message_rate = 2.0;
  const BroadcastSimResult bad = RunBroadcastSim(net.Network(), tree, above);
  EXPECT_LT(bad.CompleteFraction(), ok.CompleteFraction());
}

TEST(BroadcastSimTest, ConfigValidation) {
  const Abccc net{AbcccParams{2, 1, 2}};
  const routing::SpanningTree tree = routing::AbcccBroadcastTree(net, 0);
  BroadcastSimConfig config;
  config.message_rate = 0;
  EXPECT_THROW(RunBroadcastSim(net.Network(), tree, config), dcn::InvalidArgument);
  config = BroadcastSimConfig{};
  config.warmup = config.duration;
  EXPECT_THROW(RunBroadcastSim(net.Network(), tree, config), dcn::InvalidArgument);
  EXPECT_THROW(RunBroadcastSim(net.Network(), routing::SpanningTree{}, {}),
               dcn::InvalidArgument);
}

}  // namespace
}  // namespace dcn::sim
