#include "routing/multipath.h"

#include <gtest/gtest.h>

#include "common/error.h"

#include <set>
#include <tuple>

#include "common/rng.h"
#include "graph/paths.h"
#include "routing/route.h"
#include "topology/abccc.h"
#include "topology/bcube.h"

namespace dcn::routing {
namespace {

using topo::Abccc;
using topo::AbcccParams;
using topo::Digits;

TEST(MultipathTest, RotatedRoutesAreValidAndStartOnDistinctPlanes) {
  const AbcccParams p{4, 2, 2};
  const Abccc net{p};
  const graph::NodeId src = net.ServerAt(Digits{0, 0, 0}, 0);
  const graph::NodeId dst = net.ServerAt(Digits{1, 2, 3}, 0);
  const std::vector<Route> routes = RotatedLevelOrderRoutes(net, src, dst);
  ASSERT_EQ(routes.size(), 3u);  // one rotation per differing level
  std::set<graph::NodeId> first_switches;
  for (const Route& route : routes) {
    EXPECT_EQ(ValidateRoute(net.Network(), route), "");
    EXPECT_EQ(route.Src(), src);
    EXPECT_EQ(route.Dst(), dst);
    // hops[1] is the first relay: crossbar or level switch.
    first_switches.insert(route.hops[1]);
  }
  // The rotations must not all enter the fabric the same way.
  EXPECT_GE(first_switches.size(), 2u);
}

TEST(MultipathTest, SameRowPairYieldsSingleCrossbarRoute) {
  const Abccc net{AbcccParams{4, 2, 2}};
  const graph::NodeId a = net.ServerAtRow(5, 0);
  const graph::NodeId b = net.ServerAtRow(5, 1);
  const std::vector<Route> routes = RotatedLevelOrderRoutes(net, a, b);
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_EQ(routes[0].LinkCount(), 2u);
}

TEST(MultipathTest, FilterKeepsOnlyLinkDisjointRoutes) {
  const Abccc net{AbcccParams{4, 2, 2}};
  const graph::NodeId src = net.ServerAt(Digits{0, 0, 0}, 0);
  const graph::NodeId dst = net.ServerAt(Digits{1, 2, 3}, 0);
  std::vector<Route> routes = RotatedLevelOrderRoutes(net, src, dst);
  // Duplicate the first route: the copy must be filtered out.
  routes.push_back(routes.front());
  const std::vector<Route> kept = FilterLinkDisjoint(net.Network(), routes);
  std::set<graph::EdgeId> used;
  for (const Route& route : kept) {
    for (graph::EdgeId link : RouteLinks(net.Network(), route)) {
      EXPECT_TRUE(used.insert(link).second) << "shared link " << link;
    }
  }
  EXPECT_LT(kept.size(), routes.size());
  EXPECT_GE(kept.size(), 1u);
}

TEST(MultipathTest, MaxDisjointMatchesEdgeConnectivity) {
  const Abccc net{AbcccParams{3, 1, 2}};
  dcn::Rng rng{21};
  const auto servers = net.Servers();
  for (int trial = 0; trial < 15; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    if (src == dst) continue;
    const std::vector<Route> routes = MaxDisjointRoutes(net, src, dst);
    EXPECT_EQ(routes.size(), graph::EdgeConnectivity(net.Network(), src, dst));
    for (const Route& route : routes) {
      EXPECT_EQ(ValidateRoute(net.Network(), route), "");
    }
  }
}

TEST(MultipathTest, DualPortServersHaveTwoDisjointPaths) {
  // In BCCC-style ABCCC (c=2) a server has 2 ports, so cross-row pairs have
  // exactly 2 link-disjoint paths (bounded by NIC count).
  const Abccc net{AbcccParams{4, 2, 2}};
  const graph::NodeId src = net.ServerAt(Digits{0, 0, 0}, 0);
  const graph::NodeId dst = net.ServerAt(Digits{1, 2, 3}, 1);
  EXPECT_EQ(graph::EdgeConnectivity(net.Network(), src, dst), 2u);
}

TEST(MultipathTest, BcubeAllDigitsDifferGivesKPlusOnePaths) {
  const topo::Bcube net{topo::BcubeParams{4, 1}};
  const graph::NodeId src = net.ServerAt(Digits{0, 0});
  const graph::NodeId dst = net.ServerAt(Digits{1, 1});
  const std::vector<Route> routes = MaxDisjointRoutes(net, src, dst);
  EXPECT_EQ(routes.size(), 2u);  // k+1 parallel paths
}

TEST(MultipathTest, MaxPathsCapRespected) {
  const topo::Bcube net{topo::BcubeParams{4, 2}};
  const std::vector<Route> routes = MaxDisjointRoutes(net, 0, 63, 2);
  EXPECT_EQ(routes.size(), 2u);
}

TEST(MultipathTest, RotatedRoutesLengthsAreNearEqual) {
  // "Multiple near-equal parallel paths": rotations differ by at most the
  // two crossbar hops saved at the ends.
  const Abccc net{AbcccParams{4, 3, 2}};
  const graph::NodeId src = net.ServerAt(Digits{0, 0, 0, 0}, 0);
  const graph::NodeId dst = net.ServerAt(Digits{1, 2, 3, 1}, 3);
  const std::vector<Route> routes = RotatedLevelOrderRoutes(net, src, dst);
  std::size_t shortest = routes[0].LinkCount(), longest = routes[0].LinkCount();
  for (const Route& route : routes) {
    shortest = std::min(shortest, route.LinkCount());
    longest = std::max(longest, route.LinkCount());
  }
  EXPECT_LE(longest - shortest, 4u);
}

}  // namespace
}  // namespace dcn::routing
