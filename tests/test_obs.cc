// The obs/ determinism contract: merged counter/gauge/histogram values are
// bit-identical at any thread count, handles survive Reset(), timers nest,
// trace capture emits per-lane monotone events — and enabling any of it
// never changes a simulation's results.
#include "obs/obs.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "graph/graph.h"
#include "metrics/path_metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "routing/route.h"
#include "sim/packetsim.h"
#include "topology/abccc.h"

namespace dcn::obs {
namespace {

// Restores a clean obs state around every test: metrics zeroed, spans and
// trace capture off, pool back to automatic sizing.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EnableSpans(false);
    Reset();
  }
  void TearDown() override {
    EnableSpans(false);
    Reset();
    SetThreadCount(0);
  }
};

// A deterministic parallel workload touching one counter, one gauge, and one
// histogram: what each index contributes depends only on the index, so the
// merged values must not depend on how chunks land on threads.
void RunShardWorkload() {
  static Counter& touched = GetCounter("test/touched");
  static Gauge& high_water = GetGauge("test/high_water");
  static Histogram& residues = GetHistogram("test/residues");
  ParallelFor(1000, 7, [](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      touched.Add(i % 3 == 0 ? 2 : 1);
      high_water.Set(static_cast<std::int64_t>(i));
      residues.Add(static_cast<std::int64_t>(i % 11));
    }
  });
}

TEST_F(ObsTest, ShardMergeIsThreadCountInvariant) {
  std::uint64_t counter_at_1 = 0;
  Histogram::Snapshot hist_at_1;
  for (const int threads : {1, 3, 7}) {
    SetThreadCount(threads);
    Reset();
    RunShardWorkload();
    const std::uint64_t counter = CounterValue("test/touched");
    const Histogram::Snapshot hist = GetHistogram("test/residues").Value();
    // 334 indices divisible by 3 contribute 2, the other 666 contribute 1.
    EXPECT_EQ(counter, 334u * 2 + 666u) << "threads=" << threads;
    EXPECT_EQ(GetGauge("test/high_water").Value(), 999);
    EXPECT_EQ(hist.count, 1000u);
    if (threads == 1) {
      counter_at_1 = counter;
      hist_at_1 = hist;
      continue;
    }
    EXPECT_EQ(counter, counter_at_1) << "threads=" << threads;
    EXPECT_EQ(hist.sum, hist_at_1.sum) << "threads=" << threads;
    EXPECT_EQ(hist.max, hist_at_1.max) << "threads=" << threads;
    EXPECT_EQ(hist.overflow, hist_at_1.overflow) << "threads=" << threads;
    EXPECT_EQ(hist.buckets, hist_at_1.buckets) << "threads=" << threads;
  }
}

TEST_F(ObsTest, InstrumentedKernelCountersAreThreadCountInvariant) {
  // End-to-end flavor of the same contract: the MS-BFS level counters of a
  // real metric sweep, merged across pool shards, at 1/3/7 threads.
  const topo::Abccc net{topo::AbcccParams{4, 1, 2}};
  std::vector<std::uint64_t> baseline;
  for (const int threads : {1, 3, 7}) {
    SetThreadCount(threads);
    Reset();
    (void)metrics::ExactServerPathStats(net);
    const std::vector<std::uint64_t> values = {
        CounterValue("msbfs/batches"), CounterValue("msbfs/lanes"),
        CounterValue("msbfs/levels_top_down"),
        CounterValue("msbfs/levels_bottom_up"),
        CounterValue("msbfs/direction_switches")};
    EXPECT_GT(values[0], 0u);
    EXPECT_GT(values[2] + values[3], 0u);
    if (baseline.empty()) {
      baseline = values;
    } else {
      EXPECT_EQ(values, baseline) << "threads=" << threads;
    }
  }
}

TEST_F(ObsTest, HistogramClampsNegativesAndTracksOverflowExactly) {
  Histogram& hist = GetHistogram("test/edge_values");
  hist.Add(-5);                              // clamped into bucket 0
  hist.Add(Histogram::kMaxExactValue);       // last exact bucket
  hist.Add(Histogram::kMaxExactValue + 73);  // overflow, exact sum/max
  hist.Add(3, 4);                            // weighted
  const Histogram::Snapshot snap = hist.Value();
  EXPECT_EQ(snap.count, 7u);
  EXPECT_EQ(snap.overflow, 1u);
  EXPECT_EQ(snap.max, Histogram::kMaxExactValue + 73);
  EXPECT_EQ(snap.sum, 0 + Histogram::kMaxExactValue +
                          (Histogram::kMaxExactValue + 73) + 3 * 4);
  const std::vector<std::pair<std::int64_t, std::uint64_t>> expected = {
      {0, 1}, {3, 4}, {Histogram::kMaxExactValue, 1}};
  EXPECT_EQ(snap.buckets, expected);
}

TEST_F(ObsTest, GaugeMergesToMaxAndReportsUnset) {
  Gauge& gauge = GetGauge("test/unset_then_set");
  EXPECT_EQ(gauge.Value(-7), -7);  // fallback before any Set
  SetThreadCount(3);
  ParallelFor(8, 1, [&](std::size_t begin, std::size_t) {
    gauge.Set(static_cast<std::int64_t>(begin * 10));
  });
  EXPECT_EQ(gauge.Value(), 70);
}

TEST_F(ObsTest, SpansDisabledRecordNothing) {
  { OBS_SPAN("test/disabled_span"); }
  const Snapshot snap = TakeSnapshot();
  for (const TimerRow& row : snap.timers) {
    if (row.name == "test/disabled_span") {
      EXPECT_EQ(row.count, 0u);
      EXPECT_EQ(row.total_ns, 0u);
    }
  }
}

TEST_F(ObsTest, TimerNestingAggregatesPerSite) {
  EnableSpans(true);
  {
    OBS_SPAN("test/outer");
    for (int i = 0; i < 3; ++i) {
      OBS_SPAN("test/inner");
    }
  }
  const Snapshot snap = TakeSnapshot();
  std::uint64_t outer_count = 0, inner_count = 0;
  std::uint64_t outer_ns = 0, inner_ns = 0;
  for (const TimerRow& row : snap.timers) {
    if (row.name == "test/outer") {
      outer_count = row.count;
      outer_ns = row.total_ns;
    }
    if (row.name == "test/inner") {
      inner_count = row.count;
      inner_ns = row.total_ns;
    }
  }
  EXPECT_EQ(outer_count, 1u);
  EXPECT_EQ(inner_count, 3u);
  // The outer span encloses all three inner spans.
  EXPECT_GE(outer_ns, inner_ns);
}

TEST_F(ObsTest, ResetZeroesValuesButKeepsHandlesAndRegistration) {
  Counter& counter = GetCounter("test/reset_me");
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 41u);
  Reset();
  EXPECT_EQ(counter.Value(), 0u);  // handle still valid, value zeroed
  counter.Add(1);
  EXPECT_EQ(counter.Value(), 1u);
  EXPECT_EQ(&GetCounter("test/reset_me"), &counter);  // registration survives
  bool found = false;
  for (const CounterRow& row : TakeSnapshot().counters) {
    found = found || row.name == "test/reset_me";
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, TraceCaptureEmitsPerLaneMonotoneEvents) {
  EnableTraceCapture(true);
  SetThreadCount(3);
  ParallelFor(64, 4, [](std::size_t, std::size_t) {
    OBS_SPAN("test/trace_chunk");
    std::atomic<int> sink{0};
    for (int i = 0; i < 100; ++i) sink.fetch_add(i, std::memory_order_relaxed);
  });
  const Snapshot snap = TakeSnapshot();
  ASSERT_FALSE(snap.trace.empty());
  for (std::size_t i = 1; i < snap.trace.size(); ++i) {
    const TraceEvent& prev = snap.trace[i - 1];
    const TraceEvent& cur = snap.trace[i];
    ASSERT_TRUE(prev.tid < cur.tid ||
                (prev.tid == cur.tid && prev.start_ns <= cur.start_ns))
        << "trace events not sorted by (tid, start) at index " << i;
    ASSERT_LT(cur.site, snap.span_names.size());
  }

  std::ostringstream json;
  WriteChromeTrace(json, snap);
  const std::string text = json.str();
  EXPECT_EQ(text.front(), '[');
  EXPECT_NE(text.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(text.find("test/trace_chunk"), std::string::npos);

  // Disabling capture stops buffering; existing registrations stay.
  EnableTraceCapture(false);
  EXPECT_TRUE(SpansEnabled());  // capture off, aggregate timing still on
  EnableSpans(false);
  EXPECT_FALSE(TraceCaptureEnabled());
}

TEST_F(ObsTest, CounterValueOfUnknownNameIsZero) {
  EXPECT_EQ(CounterValue("test/never_registered"), 0u);
}

TEST_F(ObsTest, PacketSimResultsAreIdenticalWithObsEnabled) {
  // Two sources overload one link so generation, drops, queue growth, and
  // delivery are all exercised; obs must observe without perturbing.
  graph::Graph g;
  g.AddNode(graph::NodeKind::kServer);  // 0
  g.AddNode(graph::NodeKind::kServer);  // 1
  g.AddNode(graph::NodeKind::kSwitch);  // 2
  g.AddNode(graph::NodeKind::kServer);  // 3
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  const std::vector<routing::Route> routes = {routing::Route{{0, 2, 3}},
                                              routing::Route{{1, 2, 3}}};
  sim::PacketSimConfig config;
  config.offered_load = 0.8;
  config.duration = 800;
  config.warmup = 100;
  config.queue_capacity = 8;

  ASSERT_FALSE(SpansEnabled());
  const sim::PacketSimResult off = sim::RunPacketSim(g, routes, config);

  EnableTraceCapture(true);  // every sink on: spans + trace + counters
  Reset();
  const sim::PacketSimResult on = sim::RunPacketSim(g, routes, config);

  EXPECT_EQ(on.generated, off.generated);
  EXPECT_EQ(on.measured, off.measured);
  EXPECT_EQ(on.delivered, off.delivered);
  EXPECT_EQ(on.dropped, off.dropped);
  EXPECT_EQ(on.max_queue_depth, off.max_queue_depth);
  EXPECT_EQ(on.latency.Mean(), off.latency.Mean());
  EXPECT_EQ(on.latency.Percentile(0.5), off.latency.Percentile(0.5));
  EXPECT_EQ(on.latency.Percentile(0.99), off.latency.Percentile(0.99));
  EXPECT_EQ(on.max_link_utilization, off.max_link_utilization);
  EXPECT_EQ(on.mean_link_utilization, off.mean_link_utilization);

  // And the observation itself is consistent with the result it observed.
  EXPECT_EQ(CounterValue("packetsim/runs"), 1u);
  EXPECT_EQ(CounterValue("packetsim/generated"), on.generated);
  EXPECT_EQ(CounterValue("packetsim/delivered"), on.delivered);
  EXPECT_EQ(CounterValue("packetsim/dropped"), on.dropped);
  EXPECT_GT(CounterValue("packetsim/events"), on.generated);
  EXPECT_GT(GetHistogram("packetsim/queue_depth").Value().count, 0u);
  EXPECT_FALSE(TakeSnapshot().trace.empty());
}

TEST_F(ObsTest, StatsJsonAndReportTableRenderEveryKind) {
  GetCounter("test/json_counter").Add(5);
  GetGauge("test/json_gauge").Set(9);
  GetHistogram("test/json_hist").Add(2, 3);
  EnableSpans(true);
  { OBS_SPAN("test/json_span"); }
  const Snapshot snap = TakeSnapshot();

  std::ostringstream json;
  WriteStatsJson(json, snap);
  const std::string text = json.str();
  EXPECT_NE(text.find("\"test/json_counter\": 5"), std::string::npos);
  EXPECT_NE(text.find("\"test/json_gauge\": 9"), std::string::npos);
  EXPECT_NE(text.find("\"test/json_hist\""), std::string::npos);
  EXPECT_NE(text.find("\"test/json_span\""), std::string::npos);

  std::ostringstream table;
  ReportTable(snap).Print(table, "obs test");
  EXPECT_NE(table.str().find("test/json_counter"), std::string::npos);
  EXPECT_NE(table.str().find("test/json_span"), std::string::npos);
}

}  // namespace
}  // namespace dcn::obs
