#include "topology/bcube.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "common/error.h"
#include "common/rng.h"
#include "graph/bfs.h"
#include "routing/route.h"

namespace dcn::topo {
namespace {

class BcubeSweep : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  BcubeParams P() const {
    const auto [n, k] = GetParam();
    return BcubeParams{n, k};
  }
};

TEST_P(BcubeSweep, CountsMatchFormulas) {
  const BcubeParams p = P();
  const Bcube net{p};
  EXPECT_EQ(net.ServerCount(), p.ServerTotal());
  EXPECT_EQ(net.SwitchCount(), p.SwitchTotal());
  EXPECT_EQ(net.LinkCount(), p.LinkTotal());
}

TEST_P(BcubeSweep, EveryServerHasKPlusOnePorts) {
  const BcubeParams p = P();
  const Bcube net{p};
  for (const graph::NodeId server : net.Servers()) {
    EXPECT_EQ(net.Network().Degree(server), static_cast<std::size_t>(p.k + 1));
  }
  EXPECT_EQ(net.ServerPorts(), p.k + 1);
}

TEST_P(BcubeSweep, AddressRoundTrip) {
  const Bcube net{P()};
  for (const graph::NodeId server : net.Servers()) {
    EXPECT_EQ(net.ServerAt(net.AddressOf(server)), server);
  }
}

TEST_P(BcubeSweep, RoutesAreValidWithExactLength) {
  const Bcube net{P()};
  dcn::Rng rng{77};
  const auto servers = net.Servers();
  for (int trial = 0; trial < 50; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    const routing::Route route{net.Route(src, dst)};
    EXPECT_EQ(routing::ValidateRoute(net.Network(), route), "");
    // BCubeRouting is shortest: exactly 2 links per differing digit.
    const int hamming = HammingDistance(net.AddressOf(src), net.AddressOf(dst));
    EXPECT_EQ(route.LinkCount(), static_cast<std::size_t>(2 * hamming));
  }
}

TEST_P(BcubeSweep, ConnectedAndDiameterExact) {
  const BcubeParams p = P();
  const Bcube net{p};
  EXPECT_TRUE(graph::IsConnected(net.Network()));
  // Diameter over servers is exactly 2(k+1) (all digits differ).
  const std::vector<int> dist = graph::BfsDistances(net.Network(), 0);
  int ecc = 0;
  for (const graph::NodeId server : net.Servers()) {
    ecc = std::max(ecc, dist[server]);
  }
  EXPECT_EQ(ecc, 2 * (p.k + 1));
  EXPECT_EQ(net.RouteLengthBound(), 2 * (p.k + 1));
}

INSTANTIATE_TEST_SUITE_P(Sweep, BcubeSweep,
                         ::testing::Values(std::tuple{2, 0}, std::tuple{2, 1},
                                           std::tuple{2, 3}, std::tuple{3, 1},
                                           std::tuple{3, 2}, std::tuple{4, 1},
                                           std::tuple{4, 2}, std::tuple{6, 1},
                                           std::tuple{8, 1}));

TEST(BcubeTest, SwitchConnectsPlane) {
  const Bcube net{BcubeParams{4, 1}};
  const graph::NodeId sw = net.SwitchAt(1, Digits{2, 0});
  // Level-1 switch for a_0 = 2 connects servers <0,2>, <1,2>, <2,2>, <3,2>.
  for (int d = 0; d < 4; ++d) {
    EXPECT_TRUE(net.Network().Adjacent(sw, net.ServerAt(Digits{2, d})));
  }
  EXPECT_EQ(net.Network().Degree(sw), 4u);
}

TEST(BcubeTest, LabelsAndDescribe) {
  const Bcube net{BcubeParams{4, 1}};
  EXPECT_EQ(net.Describe(), "BCube(n=4,k=1)");
  EXPECT_EQ(net.NodeLabel(net.ServerAt(Digits{2, 1})), "<12>");
  EXPECT_EQ(net.Name(), "BCube");
}

TEST(BcubeTest, Validation) {
  EXPECT_THROW((Bcube{BcubeParams{1, 1}}), dcn::InvalidArgument);
  EXPECT_THROW((Bcube{BcubeParams{2, -1}}), dcn::InvalidArgument);
  const Bcube net{BcubeParams{2, 1}};
  EXPECT_THROW(net.Route(0, 99), dcn::InvalidArgument);
}

TEST(BcubeTest, TheoreticalBisection) {
  const Bcube net{BcubeParams{4, 1}};  // n^k * n/2 = 4 * 2
  EXPECT_DOUBLE_EQ(net.TheoreticalBisection(), 8.0);
}

}  // namespace
}  // namespace dcn::topo
