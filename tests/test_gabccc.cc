#include "topology/gabccc.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "graph/bfs.h"
#include "routing/broadcast.h"
#include "routing/forwarding.h"
#include "routing/multipath.h"
#include "routing/route.h"
#include "topology/abccc.h"

namespace dcn::topo {
namespace {

TEST(GeneralAbcccParamsTest, Validation) {
  EXPECT_NO_THROW((GeneralAbcccParams{{2, 2}, 2}.Validate()));
  EXPECT_THROW((GeneralAbcccParams{{}, 2}.Validate()), dcn::InvalidArgument);
  EXPECT_THROW((GeneralAbcccParams{{2, 1}, 2}.Validate()), dcn::InvalidArgument);
  EXPECT_THROW((GeneralAbcccParams{{2, 2}, 1}.Validate()), dcn::InvalidArgument);
}

TEST(GeneralAbcccParamsTest, MixedRadixCounts) {
  // radices [4, 3, 2] (little-endian: level0=4, level1=3, level2=2), c=2.
  const GeneralAbcccParams p{{4, 3, 2}, 2};
  EXPECT_EQ(p.Order(), 2);
  EXPECT_EQ(p.RowLength(), 3);
  EXPECT_EQ(p.RowCount(), 24u);
  EXPECT_EQ(p.ServerTotal(), 72u);
  EXPECT_EQ(p.LevelSwitchCount(0), 6u);   // 3*2
  EXPECT_EQ(p.LevelSwitchCount(1), 8u);   // 4*2
  EXPECT_EQ(p.LevelSwitchCount(2), 12u);  // 4*3
  EXPECT_EQ(p.LevelSwitchTotal(), 26u);
  EXPECT_EQ(p.CrossbarTotal(), 24u);
  EXPECT_EQ(p.LinkTotal(), 3u * 24u + 72u);
}

TEST(GeneralAbcccTest, UniformRadixMatchesAbccc) {
  const GeneralAbccc general{GeneralAbcccParams{{4, 4, 4}, 2}};
  const Abccc uniform{AbcccParams{4, 2, 2}};
  ASSERT_EQ(general.ServerCount(), uniform.ServerCount());
  ASSERT_EQ(general.SwitchCount(), uniform.SwitchCount());
  ASSERT_EQ(general.LinkCount(), uniform.LinkCount());
  // Structurally identical under the shared addressing (edge insertion order
  // differs, so compare through the address API, not by edge id).
  for (const graph::NodeId server : uniform.Servers()) {
    const AbcccAddress a = uniform.AddressOf(server);
    const AbcccAddress b = general.AddressOf(server);
    ASSERT_EQ(a.digits, b.digits);
    ASSERT_EQ(a.role, b.role);
    ASSERT_EQ(uniform.Network().Degree(server), general.Network().Degree(server));
    const auto [lo, hi] = uniform.Params().AgentLevels(a.role);
    for (int level = lo; level <= hi; ++level) {
      EXPECT_TRUE(general.Network().Adjacent(
          server, general.LevelSwitchAt(level, b.digits)));
    }
    EXPECT_TRUE(general.Network().Adjacent(
        server, general.CrossbarAt(general.RowOf(server))));
  }
}

TEST(GeneralAbcccTest, RowDigitsRoundTrip) {
  const GeneralAbccc net{GeneralAbcccParams{{4, 3, 2}, 2}};
  for (std::uint64_t row = 0; row < net.Params().RowCount(); ++row) {
    EXPECT_EQ(net.DigitsToRow(net.RowToDigits(row)), row);
  }
  EXPECT_THROW(net.DigitsToRow(Digits{0, 3, 0}), dcn::InvalidArgument);
}

TEST(GeneralAbcccTest, StructureDegreesAndConnectivity) {
  const GeneralAbcccParams p{{4, 3, 2}, 2};
  const GeneralAbccc net{p};
  const graph::Graph& g = net.Network();
  EXPECT_TRUE(graph::IsConnected(g));
  // Level-l switch degree = radices[l]; check via a row's switches.
  const Digits zero(3, 0);
  EXPECT_EQ(g.Degree(net.LevelSwitchAt(0, zero)), 4u);
  EXPECT_EQ(g.Degree(net.LevelSwitchAt(1, zero)), 3u);
  EXPECT_EQ(g.Degree(net.LevelSwitchAt(2, zero)), 2u);
  EXPECT_EQ(g.Degree(net.CrossbarAt(0)), 3u);  // m = 3
}

TEST(GeneralAbcccTest, LevelSwitchConnectsItsPlane) {
  const GeneralAbccc net{GeneralAbcccParams{{4, 3, 2}, 2}};
  const graph::Graph& g = net.Network();
  Digits digits{1, 2, 0};
  const graph::NodeId sw = net.LevelSwitchAt(1, digits);
  for (int d = 0; d < 3; ++d) {
    digits[1] = d;
    EXPECT_TRUE(g.Adjacent(sw, net.ServerAt(digits, net.Params().AgentRole(1))));
  }
}

TEST(GeneralAbcccTest, AllPairsRoutingIsValid) {
  const GeneralAbccc net{GeneralAbcccParams{{3, 2, 2}, 2}};
  for (const graph::NodeId src : net.Servers()) {
    for (const graph::NodeId dst : net.Servers()) {
      const routing::Route route{net.Route(src, dst)};
      ASSERT_EQ(routing::ValidateRoute(net.Network(), route), "")
          << src << "->" << dst;
      ASSERT_EQ(route.Dst(), dst);
      ASSERT_LE(static_cast<int>(route.LinkCount()), net.RouteLengthBound());
    }
  }
}

TEST(GeneralAbcccTest, RoutingNotShorterThanBfs) {
  const GeneralAbccc net{GeneralAbcccParams{{4, 2, 3}, 3}};
  Rng rng{91};
  const auto servers = net.Servers();
  for (int trial = 0; trial < 40; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const std::vector<int> dist = graph::BfsDistances(net.Network(), src);
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    const routing::Route route{net.Route(src, dst)};
    EXPECT_GE(static_cast<int>(route.LinkCount()), dist[dst]);
  }
}

TEST(GeneralAbcccTest, DescribeAndLabels) {
  const GeneralAbccc net{GeneralAbcccParams{{4, 3, 2}, 2}};
  EXPECT_EQ(net.Describe(), "GeneralABCCC(radices=[2,3,4],c=2)");
  EXPECT_EQ(net.Name(), "GeneralABCCC");
  EXPECT_EQ(net.NodeLabel(net.ServerAt(Digits{1, 2, 0}, 1)), "<021;1>");
}

TEST(SliceExpansionTest, PlanIsPureAddition) {
  const GeneralAbcccParams from{{4, 4, 2}, 2};  // top level partially built
  const ExpansionStep step = PlanSliceExpansion(from, 2);
  EXPECT_EQ(step.existing_servers_modified, 0u);
  EXPECT_EQ(step.existing_switches_replaced, 0u);
  EXPECT_EQ(step.existing_links_recabled, 0u);
  EXPECT_EQ(step.DisruptionTotal(), 0u);
  const GeneralAbcccParams to{{4, 4, 3}, 2};
  EXPECT_EQ(step.servers_after, to.ServerTotal());
  // Each existing level-2 switch accepts one new slice cable.
  EXPECT_EQ(step.crossbar_ports_consumed, from.LevelSwitchCount(2));
  EXPECT_THROW(PlanSliceExpansion(from, 5), dcn::InvalidArgument);
}

TEST(SliceExpansionTest, SliceGrowthChainEmbeds) {
  // Grow the top level 2 -> 3 -> 4: every step keeps the old network intact.
  for (int r = 2; r < 4; ++r) {
    const GeneralAbccc before{GeneralAbcccParams{{4, 4, r}, 2}};
    const GeneralAbccc after{GeneralAbcccParams{{4, 4, r + 1}, 2}};
    EXPECT_TRUE(VerifySliceExpansion(before, after)) << "r=" << r;
  }
}

TEST(SliceExpansionTest, LowerLevelGrowthAlsoEmbeds) {
  const GeneralAbccc before{GeneralAbcccParams{{3, 4, 2}, 3}};
  const GeneralAbccc after{GeneralAbcccParams{{4, 4, 2}, 3}};
  EXPECT_TRUE(VerifySliceExpansion(before, after));
}

TEST(SliceExpansionTest, MismatchesRejected) {
  const GeneralAbccc a{GeneralAbcccParams{{4, 4}, 2}};
  const GeneralAbccc shrunk{GeneralAbcccParams{{4, 3}, 2}};
  EXPECT_FALSE(VerifySliceExpansion(a, shrunk));
  const GeneralAbccc other_c{GeneralAbcccParams{{4, 4}, 3}};
  EXPECT_FALSE(VerifySliceExpansion(a, other_c));
  const GeneralAbccc deeper{GeneralAbcccParams{{4, 4, 2}, 2}};
  EXPECT_FALSE(VerifySliceExpansion(a, deeper));
}

TEST(SliceExpansionTest, IdenticalNetworksEmbedTrivially) {
  const GeneralAbccc a{GeneralAbcccParams{{3, 3}, 2}};
  const GeneralAbccc b{GeneralAbcccParams{{3, 3}, 2}};
  EXPECT_TRUE(VerifySliceExpansion(a, b));
}

TEST(GeneralAbcccTest, PartialDeploymentSizesInterpolate) {
  // The point of slice growth: server counts between the k and k+1 uniform
  // networks become reachable.
  const Abccc small{AbcccParams{4, 1, 2}};   // 32 servers
  const Abccc large{AbcccParams{4, 2, 2}};   // 192 servers
  std::vector<std::uint64_t> sizes;
  for (int r = 2; r <= 4; ++r) {
    const GeneralAbcccParams partial{{4, 4, r}, 2};
    sizes.push_back(partial.ServerTotal());
  }
  EXPECT_EQ(sizes, (std::vector<std::uint64_t>{96, 144, 192}));
  EXPECT_GT(sizes.front(), small.ServerCount());
  EXPECT_EQ(sizes.back(), large.ServerCount());
}

TEST(GeneralAbcccRoutingTest, BroadcastCoversPartialDeployment) {
  const GeneralAbccc net{GeneralAbcccParams{{4, 4, 3}, 2}};  // partial top
  const routing::SpanningTree tree = routing::AbcccBroadcastTree(net, 0);
  EXPECT_EQ(tree.CoveredCount(), net.ServerCount());
  for (const graph::NodeId server : net.Servers()) {
    const routing::Route path = tree.PathTo(server);
    ASSERT_EQ(routing::ValidateRoute(net.Network(), path), "");
  }
}

TEST(GeneralAbcccRoutingTest, MulticastPrunesPartialDeployment) {
  const GeneralAbccc net{GeneralAbcccParams{{3, 3, 2}, 2}};
  const std::vector<graph::NodeId> targets{3, 17, 25};
  const routing::SpanningTree tree = routing::AbcccMulticastTree(net, 0, targets);
  for (const graph::NodeId target : targets) {
    EXPECT_TRUE(tree.Contains(target));
  }
  EXPECT_LT(tree.CoveredCount(), net.ServerCount());
}

TEST(GeneralAbcccRoutingTest, ForwardingReachesEveryPair) {
  const GeneralAbccc net{GeneralAbcccParams{{3, 2, 2}, 2}};
  for (const graph::NodeId src : net.Servers()) {
    for (const graph::NodeId dst : net.Servers()) {
      const routing::Route route = routing::AbcccForwardRoute(net, src, dst);
      ASSERT_EQ(route.Dst(), dst);
      ASSERT_EQ(routing::ValidateRoute(net.Network(), route), "");
    }
  }
}

TEST(GeneralAbcccRoutingTest, RotatedRoutesAreValidOnMixedRadices) {
  const GeneralAbccc net{GeneralAbcccParams{{4, 3, 2}, 2}};
  Rng rng{93};
  const auto servers = net.Servers();
  for (int trial = 0; trial < 25; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    for (const routing::Route& route :
         routing::RotatedLevelOrderRoutes(net, src, dst)) {
      EXPECT_EQ(routing::ValidateRoute(net.Network(), route), "");
      EXPECT_EQ(route.Src(), src);
      EXPECT_EQ(route.Dst(), dst);
    }
  }
}

}  // namespace
}  // namespace dcn::topo
