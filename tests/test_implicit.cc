// Differential suite: the implicit address-arithmetic cubes
// (topology/implicit.h) against the materialized builders, family by family.
// The contract under test is BYTE IDENTITY — same node ids, same neighbor
// enumeration order, same traversal results, same sampled statistics from the
// same seed, at any thread count — because everything the scale benches
// report at million-server sizes is validated only by these small-size
// equalities.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "graph/bfs.h"
#include "graph/implicit.h"
#include "graph/msbfs.h"
#include "graph/workspace.h"
#include "metrics/path_metrics.h"
#include "metrics/resilience.h"
#include "topology/abccc.h"
#include "topology/bccc.h"
#include "topology/bcube.h"
#include "topology/implicit.h"

namespace dcn {
namespace {

static_assert(graph::TraversalGraph<topo::ImplicitCube>);
static_assert(graph::TraversalGraph<graph::CsrView>);
static_assert(graph::HasAdjacencySpans<graph::CsrView>);
static_assert(!graph::HasAdjacencySpans<topo::ImplicitCube>);

struct Case {
  std::unique_ptr<topo::Topology> net;
  topo::ImplicitCube cube;
};

// One case per structural regime: multi-role with crossbars (generic, deep,
// partial last role), the m == 1 degenerations (ABCCC-named and BCube-named),
// the k == 0 single-level edge, and the published BCCC/BCube families.
std::vector<Case> AllCases() {
  std::vector<Case> cases;
  const auto abccc = [&](int n, int k, int c) {
    cases.push_back(Case{std::make_unique<topo::Abccc>(topo::AbcccParams{n, k, c}),
                         topo::ImplicitCube::MakeAbccc(n, k, c)});
  };
  abccc(3, 2, 2);
  abccc(4, 3, 2);
  abccc(3, 3, 3);
  abccc(2, 4, 3);
  abccc(4, 1, 3);  // m == 1: no crossbars under the ABCCC name
  abccc(3, 0, 2);  // k == 0: one level, one switch per row
  cases.push_back(
      Case{std::make_unique<topo::Bccc>(3, 2), topo::ImplicitCube::MakeBccc(3, 2)});
  cases.push_back(
      Case{std::make_unique<topo::Bcube>(4, 2), topo::ImplicitCube::MakeBcube(4, 2)});
  cases.push_back(
      Case{std::make_unique<topo::Bcube>(2, 3), topo::ImplicitCube::MakeBcube(2, 3)});
  return cases;
}

std::vector<graph::NodeId> Neighbors(const topo::ImplicitCube& cube,
                                     graph::NodeId node) {
  std::vector<graph::NodeId> out;
  cube.ForEachNeighbor(node, [&](graph::NodeId to) { out.push_back(to); });
  return out;
}

void ExpectSweepEq(const graph::AllPairsSweepStats& a,
                   const graph::AllPairsSweepStats& b) {
  EXPECT_EQ(a.distance_total, b.distance_total);
  EXPECT_EQ(a.pairs, b.pairs);
  EXPECT_EQ(a.diameter, b.diameter);
  EXPECT_EQ(a.radius, b.radius);
  EXPECT_EQ(a.connected, b.connected);
  EXPECT_EQ(a.pairs_at_distance, b.pairs_at_distance);
}

TEST(ImplicitCubeTest, StructureAndNeighborOrderMatchMaterialized) {
  for (const Case& c : AllCases()) {
    SCOPED_TRACE(c.cube.Describe());
    const graph::Graph& g = c.net->Network();
    const graph::CsrView& csr = g.Csr();

    EXPECT_EQ(c.cube.Describe(), c.net->Describe());
    EXPECT_EQ(c.cube.Name(), c.net->Name());
    ASSERT_EQ(c.cube.NodeCount(), g.NodeCount());
    EXPECT_EQ(c.cube.ServerCount(), g.ServerCount());
    EXPECT_EQ(c.cube.SwitchCount(), g.SwitchCount());
    EXPECT_EQ(c.cube.LinkCount(), g.EdgeCount());
    EXPECT_EQ(c.cube.DegreeBound(), csr.DegreeBound());
    EXPECT_EQ(c.cube.ServerPorts(), c.net->ServerPorts());
    EXPECT_EQ(c.cube.RouteLengthBound(), c.net->RouteLengthBound());

    std::uint64_t nic_ports = 0;
    std::uint64_t switch_ports = 0;
    for (graph::NodeId node = 0;
         static_cast<std::size_t>(node) < g.NodeCount(); ++node) {
      EXPECT_EQ(c.cube.IsServer(node), g.IsServer(node));
      ASSERT_EQ(c.cube.Degree(node), g.Degree(node));
      (g.IsServer(node) ? nic_ports : switch_ports) += g.Degree(node);

      // Byte identity hinges on enumeration ORDER, not just the set: the
      // implicit walk must replay the builder's edge insertion sequence.
      const auto expected = csr.AdjacentNodes(node);
      const std::vector<graph::NodeId> actual = Neighbors(c.cube, node);
      ASSERT_EQ(actual.size(), expected.size());
      EXPECT_TRUE(std::equal(actual.begin(), actual.end(), expected.begin()));
    }
    EXPECT_EQ(c.cube.NicPortTotal(), nic_ports);
    EXPECT_EQ(c.cube.SwitchPortTotal(), switch_ports);

    for (std::size_t i = 0; i < c.cube.ServerCount(); ++i) {
      ASSERT_EQ(c.cube.ServerIdAt(i), csr.ServerIdAt(i));
    }
  }
}

TEST(ImplicitCubeTest, TraversalsMatchMaterialized) {
  for (const Case& c : AllCases()) {
    SCOPED_TRACE(c.cube.Describe());
    const graph::CsrView& csr = c.net->Network().Csr();

    // Single-source distances from a few spread-out roots.
    graph::TraversalScope ws_csr;
    graph::TraversalScope ws_cube;
    const std::vector<graph::NodeId> roots = {
        0, static_cast<graph::NodeId>(c.cube.ServerCount() / 2),
        static_cast<graph::NodeId>(c.cube.NodeCount() - 1)};
    for (const graph::NodeId root : roots) {
      graph::BfsDistances(csr, root, *ws_csr);
      graph::BfsDistances(c.cube, root, *ws_cube);
      for (graph::NodeId node = 0;
           static_cast<std::size_t>(node) < c.cube.NodeCount(); ++node) {
        ASSERT_EQ(ws_cube->Dist(node), ws_csr->Dist(node));
      }
    }

    // Bit-parallel kernels: distances, eccentricities, and the full sweep,
    // at several thread counts — all bit-identical to the materialized run.
    std::vector<graph::NodeId> sources;
    for (std::size_t i = 0; i < c.cube.ServerCount(); i += 3) {
      sources.push_back(c.cube.ServerIdAt(i));
    }
    const std::vector<int> want_dist = graph::MultiSourceDistances(csr, sources);
    const std::vector<int> want_ecc = graph::ServerEccentricities(csr, sources);
    const graph::AllPairsSweepStats want_sweep =
        graph::AllPairsDistanceSweep(csr);
    for (const int threads : {1, 3, 7}) {
      SetThreadCount(threads);
      EXPECT_EQ(graph::MultiSourceDistances(c.cube, sources), want_dist);
      EXPECT_EQ(graph::ServerEccentricities(c.cube, sources), want_ecc);
      ExpectSweepEq(graph::AllPairsDistanceSweep(c.cube), want_sweep);
    }
    SetThreadCount(0);
  }
}

TEST(ImplicitCubeTest, ExactStatsMatchAndSymmetryReductionIsExact) {
  for (const Case& c : AllCases()) {
    SCOPED_TRACE(c.cube.Describe());
    const metrics::ExactPathStats full = metrics::ExactServerPathStats(*c.net);
    const metrics::ExactPathStats implicit_full =
        metrics::ExactServerPathStats(c.cube);
    const metrics::ExactPathStats reduced =
        metrics::SymmetryReducedPathStats(c.cube);

    for (const metrics::ExactPathStats* got : {&implicit_full, &reduced}) {
      EXPECT_EQ(got->diameter, full.diameter);
      EXPECT_EQ(got->radius, full.radius);
      EXPECT_EQ(got->pairs, full.pairs);
      EXPECT_EQ(got->connected, full.connected);
      // Exact double equality: the reduced sweep scales integer totals, so
      // even the division reproduces the full sweep's bits.
      EXPECT_EQ(got->average, full.average);
      EXPECT_EQ(got->pairs_at_distance, full.pairs_at_distance);
    }
  }
}

TEST(ImplicitCubeTest, SampledStatsMatchMaterializedAtAnyThreadCount) {
  for (const Case& c : AllCases()) {
    SCOPED_TRACE(c.cube.Describe());
    Rng want_rng{2015};
    const metrics::SampledPathStats want =
        metrics::SamplePathStats(*c.net, 6, 9, want_rng);
    for (const int threads : {1, 3, 7}) {
      SetThreadCount(threads);
      Rng rng{2015};
      const metrics::SampledPathStats got =
          metrics::SamplePathStats(c.cube, 6, 9, rng);
      EXPECT_EQ(got.shortest.Buckets(), want.shortest.Buckets());
      EXPECT_EQ(got.routed.Buckets(), want.routed.Buckets());
      EXPECT_EQ(got.mean_stretch, want.mean_stretch);
      EXPECT_EQ(got.diameter_lower_bound, want.diameter_lower_bound);
    }
    SetThreadCount(0);
  }
}

TEST(ImplicitCubeTest, RoutesMatchMaterializedNodeForNode) {
  for (const Case& c : AllCases()) {
    SCOPED_TRACE(c.cube.Describe());
    Rng rng{77};
    const std::size_t servers = c.cube.ServerCount();
    for (int trial = 0; trial < 25; ++trial) {
      const auto src = static_cast<graph::NodeId>(rng.NextUint64(servers));
      const auto dst = static_cast<graph::NodeId>(rng.NextUint64(servers));
      ASSERT_EQ(c.cube.Route(src, dst), c.net->Route(src, dst));
    }
  }
}

TEST(ImplicitCubeTest, DisconnectionFractionMatchesUnderNodeKills) {
  // Kill one level switch and one crossbar; sampled pair disconnection must
  // agree between representations (same seed, node-id-identical kills).
  const topo::Abccc net{topo::AbcccParams{4, 3, 2}};
  const topo::ImplicitCube cube = topo::ImplicitCube::MakeAbccc(4, 3, 2);

  graph::FailureSet mat{net.Network()};
  graph::FailureSet imp{cube.NodeCount(), cube.LinkCount()};
  const graph::NodeId dead_switch =
      static_cast<graph::NodeId>(cube.NodeCount() - 1);
  const graph::NodeId dead_crossbar = cube.CrossbarAt(0);
  for (const graph::NodeId node : {dead_switch, dead_crossbar}) {
    mat.KillNode(node);
    imp.KillNode(node);
  }

  Rng mat_rng{99};
  const double want = metrics::PairDisconnectionFraction(net, mat, 96, mat_rng);
  for (const int threads : {1, 3, 7}) {
    SetThreadCount(threads);
    Rng imp_rng{99};
    EXPECT_EQ(metrics::PairDisconnectionFraction(cube, imp, 96, imp_rng), want);
  }
  SetThreadCount(0);
}

TEST(ImplicitCubeTest, EdgeFailuresAreRejectedOnImplicitGraphs) {
  const topo::ImplicitCube cube = topo::ImplicitCube::MakeAbccc(3, 2, 2);
  graph::FailureSet failures{cube.NodeCount(), cube.LinkCount()};
  failures.KillEdge(0);
  graph::TraversalScope ws;
  EXPECT_THROW(graph::BfsDistances(cube, 0, *ws, &failures), InvalidArgument);
}

TEST(ImplicitCubeTest, NodeIdOverflowThrowsAtConstruction) {
  // 5.4e9 servers: fine for 64-bit validation, too big for 32-bit node ids.
  topo::AbcccParams params{64, 4, 2};
  EXPECT_NO_THROW(params.Validate());
  EXPECT_THROW(topo::ImplicitCube::MakeAbccc(64, 4, 2), InvalidArgument);
}

TEST(ImplicitCubeTest, FamilyConstraintsEnforced) {
  EXPECT_THROW(topo::ImplicitCube(topo::AbcccParams{3, 2, 3},
                                  topo::CubeFamily::kBccc),
               InvalidArgument);
  EXPECT_THROW(topo::ImplicitCube(topo::AbcccParams{3, 2, 2},
                                  topo::CubeFamily::kBcube),
               InvalidArgument);
}

}  // namespace
}  // namespace dcn
