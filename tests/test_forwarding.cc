#include "routing/forwarding.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/error.h"
#include "common/rng.h"
#include "routing/route.h"

namespace dcn::routing {
namespace {

using topo::Abccc;
using topo::AbcccParams;
using topo::Bcube;
using topo::BcubeParams;
using topo::Dcell;
using topo::DcellParams;
using topo::Digits;

class AbcccForwardingSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {
 protected:
  AbcccParams P() const {
    const auto [n, k, c] = GetParam();
    return AbcccParams{n, k, c};
  }
};

TEST_P(AbcccForwardingSweep, WalkReachesDestinationWithinBudget) {
  const Abccc net{P()};
  dcn::Rng rng{71};
  const auto servers = net.Servers();
  for (int trial = 0; trial < 60; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    const Route route = AbcccForwardRoute(net, src, dst);
    EXPECT_EQ(route.Src(), src);
    EXPECT_EQ(route.Dst(), dst);
    EXPECT_EQ(ValidateRoute(net.Network(), route), "");
    EXPECT_LE(static_cast<int>(route.LinkCount()), net.RouteLengthBound());
  }
}

// Memorylessness: truncating a forwarding walk at any intermediate server and
// restarting forwarding from there reproduces the remaining suffix — packets
// carry no path state, so this must hold exactly.
TEST_P(AbcccForwardingSweep, SuffixOfWalkIsWalkFromIntermediate) {
  const Abccc net{P()};
  dcn::Rng rng{72};
  const auto servers = net.Servers();
  for (int trial = 0; trial < 20; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    const Route route = AbcccForwardRoute(net, src, dst);
    for (std::size_t i = 0; i < route.hops.size(); ++i) {
      const graph::NodeId mid = route.hops[i];
      if (!net.Network().IsServer(mid)) continue;
      const Route suffix = AbcccForwardRoute(net, mid, dst);
      ASSERT_EQ(suffix.hops.size(), route.hops.size() - i);
      for (std::size_t j = 0; j < suffix.hops.size(); ++j) {
        ASSERT_EQ(suffix.hops[j], route.hops[i + j]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AbcccForwardingSweep,
                         ::testing::Values(std::tuple{2, 1, 2}, std::tuple{3, 2, 2},
                                           std::tuple{4, 1, 2}, std::tuple{4, 2, 3},
                                           std::tuple{4, 2, 4}, std::tuple{5, 2, 3},
                                           std::tuple{2, 4, 2}, std::tuple{3, 3, 3},
                                           std::tuple{6, 2, 2}, std::tuple{4, 3, 2}));

TEST(AbcccForwardingTest, SelfHopIsNullopt) {
  const Abccc net{AbcccParams{4, 1, 2}};
  EXPECT_FALSE(AbcccNextHop(net, 5, 5).has_value());
  const Route route = AbcccForwardRoute(net, 5, 5);
  EXPECT_EQ(route.hops.size(), 1u);
}

TEST(AbcccForwardingTest, OwnedLevelFixedWithoutCrossbar) {
  const AbcccParams p{4, 2, 2};
  const Abccc net{p};
  // Server role 1 owns level 1; destination differs only there.
  const graph::NodeId src = net.ServerAt(Digits{0, 0, 0}, 1);
  const graph::NodeId dst = net.ServerAt(Digits{0, 2, 0}, 1);
  const std::optional<ServerHop> hop = AbcccNextHop(net, src, dst);
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(hop->via_switch, net.LevelSwitchAt(1, Digits{0, 0, 0}));
  EXPECT_EQ(hop->next_server, dst);
}

TEST(AbcccForwardingTest, UnownedLevelGoesThroughCrossbarFirst) {
  const AbcccParams p{4, 2, 2};
  const Abccc net{p};
  const graph::NodeId src = net.ServerAt(Digits{0, 0, 0}, 0);
  const graph::NodeId dst = net.ServerAt(Digits{0, 2, 0}, 0);  // level 1 differs
  const std::optional<ServerHop> hop = AbcccNextHop(net, src, dst);
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(hop->via_switch, net.CrossbarAt(0));
  EXPECT_EQ(hop->next_server, net.ServerAt(Digits{0, 0, 0}, 1));
}

TEST(BcubeForwardingTest, MatchesSourceRoutingExactly) {
  const Bcube net{BcubeParams{4, 2}};
  dcn::Rng rng{73};
  const auto servers = net.Servers();
  for (int trial = 0; trial < 60; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    const Route forwarded = BcubeForwardRoute(net, src, dst);
    const Route sourced{net.Route(src, dst)};
    EXPECT_EQ(forwarded.hops, sourced.hops);
  }
}

TEST(DcellForwardingTest, MatchesSourceRoutingExactly) {
  const Dcell net{DcellParams{4, 2}};
  dcn::Rng rng{74};
  const auto servers = net.Servers();
  for (int trial = 0; trial < 40; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    const Route forwarded = DcellForwardRoute(net, src, dst);
    const Route sourced{net.Route(src, dst)};
    EXPECT_EQ(forwarded.hops, sourced.hops);
  }
}

TEST(DcellForwardingTest, DirectLinkHopHasNoSwitch) {
  const Dcell net{DcellParams{4, 1}};
  // Servers 0 and 4 are joined by a level-1 server-server link.
  const std::optional<ServerHop> hop = DcellNextHop(net, 0, 4);
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(hop->via_switch, graph::kInvalidNode);
  EXPECT_EQ(hop->next_server, 4);
}

TEST(ForwardWalkTest, BudgetViolationThrows) {
  const Abccc net{AbcccParams{4, 1, 2}};
  // An adversarial rule that never makes progress: bounce between the first
  // two row members forever.
  auto bad_rule = [&](graph::NodeId at,
                      graph::NodeId) -> std::optional<ServerHop> {
    const int role = net.AddressOf(at).role;
    return ServerHop{net.CrossbarAt(net.RowOf(at)),
                     net.ServerAtRow(net.RowOf(at), role == 0 ? 1 : 0)};
  };
  EXPECT_THROW(ForwardWalk(net.Servers()[0], net.Servers()[5], bad_rule, 20),
               dcn::FailedPrecondition);
}

}  // namespace
}  // namespace dcn::routing
