#include "topology/fattree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "graph/bfs.h"
#include "metrics/bisection.h"
#include "routing/route.h"

namespace dcn::topo {
namespace {

class FatTreeSweep : public ::testing::TestWithParam<int> {
 protected:
  FatTreeParams P() const { return FatTreeParams{GetParam()}; }
};

TEST_P(FatTreeSweep, CountsMatchFormulas) {
  const FatTreeParams p = P();
  const FatTree net{p};
  EXPECT_EQ(net.ServerCount(), p.ServerTotal());
  EXPECT_EQ(net.SwitchCount(), p.SwitchTotal());
  EXPECT_EQ(net.LinkCount(), p.LinkTotal());
}

TEST_P(FatTreeSweep, EverySwitchHasRadixAtMostK) {
  const FatTreeParams p = P();
  const FatTree net{p};
  const graph::Graph& g = net.Network();
  for (graph::NodeId node = 0; static_cast<std::size_t>(node) < g.NodeCount();
       ++node) {
    if (g.IsSwitch(node)) {
      EXPECT_LE(g.Degree(node), static_cast<std::size_t>(p.k));
    } else {
      EXPECT_EQ(g.Degree(node), 1u);  // single NIC
    }
  }
}

TEST_P(FatTreeSweep, RoutesValidWithUpDownLengths) {
  const FatTree net{P()};
  dcn::Rng rng{88};
  const auto servers = net.Servers();
  for (int trial = 0; trial < 80; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    if (src == dst) continue;
    const routing::Route route{net.Route(src, dst)};
    EXPECT_EQ(routing::ValidateRoute(net.Network(), route), "");
    const std::size_t links = route.LinkCount();
    EXPECT_TRUE(links == 2 || links == 4 || links == 6) << links;
    if (net.PodOf(src) != net.PodOf(dst)) {
      EXPECT_EQ(links, 6u);
    }
  }
}

TEST_P(FatTreeSweep, ConnectedWithDiameterSix) {
  const FatTree net{P()};
  EXPECT_TRUE(graph::IsConnected(net.Network()));
  const std::vector<int> dist = graph::BfsDistances(net.Network(), 0);
  int ecc = 0;
  for (const graph::NodeId server : net.Servers()) {
    ecc = std::max(ecc, dist[server]);
  }
  EXPECT_EQ(ecc, 6);
}

TEST_P(FatTreeSweep, FullBisection) {
  const FatTree net{P()};
  // Measured min cut between pod halves equals N/2 links.
  EXPECT_EQ(metrics::MeasureBisection(net),
            static_cast<std::int64_t>(net.ServerCount() / 2));
  EXPECT_DOUBLE_EQ(net.TheoreticalBisection(),
                   static_cast<double>(net.ServerCount()) / 2.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FatTreeSweep, ::testing::Values(2, 4, 6, 8));

TEST(FatTreeTest, AddressingHelpers) {
  const FatTree net{FatTreeParams{4}};
  const graph::NodeId server = net.ServerIdOf(2, 1, 0);
  EXPECT_EQ(net.PodOf(server), 2);
  EXPECT_EQ(net.EdgeIndexOf(server), 1);
  EXPECT_EQ(net.HostIndexOf(server), 0);
  EXPECT_TRUE(net.Network().Adjacent(server, net.EdgeSwitch(2, 1)));
  EXPECT_THROW(net.ServerIdOf(4, 0, 0), dcn::InvalidArgument);
  EXPECT_THROW(net.CoreSwitch(4), dcn::InvalidArgument);
}

TEST(FatTreeTest, SameEdgeRouteIsTwoLinks) {
  const FatTree net{FatTreeParams{4}};
  const routing::Route route{
      net.Route(net.ServerIdOf(0, 0, 0), net.ServerIdOf(0, 0, 1))};
  ASSERT_EQ(route.LinkCount(), 2u);
  EXPECT_EQ(route.hops[1], net.EdgeSwitch(0, 0));
}

TEST(FatTreeTest, SamePodRouteIsFourLinks) {
  const FatTree net{FatTreeParams{4}};
  const routing::Route route{
      net.Route(net.ServerIdOf(1, 0, 0), net.ServerIdOf(1, 1, 1))};
  EXPECT_EQ(route.LinkCount(), 4u);
}

TEST(FatTreeTest, OddRadixRejected) {
  EXPECT_THROW((FatTree{FatTreeParams{3}}), dcn::InvalidArgument);
  EXPECT_THROW((FatTree{FatTreeParams{0}}), dcn::InvalidArgument);
}

TEST(FatTreeTest, LabelsAndDescribe) {
  const FatTree net{FatTreeParams{4}};
  EXPECT_EQ(net.Describe(), "FatTree(k=4)");
  EXPECT_EQ(net.NodeLabel(net.ServerIdOf(1, 0, 1)), "h(1,0,1)");
  EXPECT_EQ(net.NodeLabel(net.EdgeSwitch(0, 1)), "edge(0,1)");
  EXPECT_EQ(net.NodeLabel(net.AggSwitch(2, 0)), "agg(2,0)");
  EXPECT_EQ(net.NodeLabel(net.CoreSwitch(3)), "core(3)");
  EXPECT_EQ(net.ServerPorts(), 1);
}

}  // namespace
}  // namespace dcn::topo
