#include "topology/address.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "common/error.h"

namespace dcn::topo {
namespace {

TEST(AddressTest, DigitsToIndexLittleEndianWeights) {
  // digits[i] has weight base^i: [1, 2, 3] base 4 = 1 + 2*4 + 3*16 = 57.
  const Digits digits{1, 2, 3};
  EXPECT_EQ(DigitsToIndex(digits, 4), 57u);
}

TEST(AddressTest, RoundTripAllValues) {
  const int base = 3;
  const int count = 4;
  for (std::uint64_t index = 0; index < 81; ++index) {
    const Digits digits = IndexToDigits(index, base, count);
    ASSERT_EQ(digits.size(), 4u);
    EXPECT_EQ(DigitsToIndex(digits, base), index);
  }
}

TEST(AddressTest, IndexTooLargeThrows) {
  EXPECT_THROW(IndexToDigits(8, 2, 3), InvalidArgument);  // 8 needs 4 bits
  EXPECT_NO_THROW(IndexToDigits(7, 2, 3));
}

TEST(AddressTest, DigitOutOfRangeThrows) {
  const Digits digits{5, 0};
  EXPECT_THROW(DigitsToIndex(digits, 4), InvalidArgument);
  EXPECT_THROW(DigitsToIndex(Digits{-1}, 4), InvalidArgument);
}

TEST(AddressTest, SkippingRemovesOnePosition) {
  const Digits digits{1, 2, 3};  // base 4
  // Skip position 1: remaining [1, 3] -> 1 + 3*4 = 13.
  EXPECT_EQ(DigitsToIndexSkipping(digits, 4, 1), 13u);
  // Skip position 0: [2, 3] -> 2 + 3*4 = 14.
  EXPECT_EQ(DigitsToIndexSkipping(digits, 4, 0), 14u);
  // Skip position 2: [1, 2] -> 1 + 2*4 = 9.
  EXPECT_EQ(DigitsToIndexSkipping(digits, 4, 2), 9u);
  EXPECT_THROW(DigitsToIndexSkipping(digits, 4, 3), InvalidArgument);
}

TEST(AddressTest, SkippingIsInjectivePerLevel) {
  // Two addresses that differ only at the skipped position collide; any
  // other difference must not.
  const Digits a{1, 2, 3};
  const Digits b{0, 2, 3};
  const Digits c{1, 0, 3};
  EXPECT_EQ(DigitsToIndexSkipping(a, 4, 0), DigitsToIndexSkipping(b, 4, 0));
  EXPECT_NE(DigitsToIndexSkipping(a, 4, 0), DigitsToIndexSkipping(c, 4, 0));
}

TEST(AddressTest, ToStringBigEndian) {
  EXPECT_EQ(DigitsToString(Digits{1, 2, 3}, 4), "321");
  EXPECT_EQ(DigitsToString(Digits{11, 0, 3}, 16), "3.0.11");
  EXPECT_EQ(DigitsToString(Digits{}, 4), "");
}

TEST(AddressTest, HammingDistance) {
  EXPECT_EQ(HammingDistance(Digits{1, 2, 3}, Digits{1, 2, 3}), 0);
  EXPECT_EQ(HammingDistance(Digits{1, 2, 3}, Digits{0, 2, 1}), 2);
  EXPECT_THROW(HammingDistance(Digits{1}, Digits{1, 2}), InvalidArgument);
}

TEST(AddressTest, PackedDigitHelpersMatchDigitVectors) {
  // The allocation-free helpers must agree with the digit-vector functions
  // on every index and position — they are the hot-loop replacements.
  const int base = 5;
  const int count = 4;
  std::array<int, 4> buf{};
  for (std::uint64_t index = 0; index < 625; ++index) {
    const Digits digits = IndexToDigits(index, base, count);
    IndexToDigitsInto(index, base, buf);
    for (int pos = 0; pos < count; ++pos) {
      ASSERT_EQ(buf[static_cast<std::size_t>(pos)], digits[pos]);
      ASSERT_EQ(DigitAt(index, base, pos), digits[pos]);

      Digits replaced = digits;
      replaced[pos] = (digits[pos] + 1) % base;
      ASSERT_EQ(IndexWithDigit(index, base, pos, replaced[pos]),
                DigitsToIndex(replaced, base));
      ASSERT_EQ(IndexWithDigit(index, base, pos, digits[pos]), index);

      const std::uint64_t rest = IndexSkippingDigit(index, base, pos);
      ASSERT_EQ(rest, DigitsToIndexSkipping(digits, base, pos));
      ASSERT_EQ(IndexInsertingDigit(rest, base, pos, digits[pos]), index);
    }
  }
}

TEST(AddressTest, CheckedMulAndAdd) {
  EXPECT_EQ(CheckedMul(3, 7), 21u);
  EXPECT_EQ(CheckedMul(std::uint64_t{1} << 32, 2), std::uint64_t{1} << 33);
  EXPECT_EQ(CheckedMul(~std::uint64_t{0}, 0), 0u);
  EXPECT_EQ(CheckedMul(~std::uint64_t{0}, 1), ~std::uint64_t{0});
  EXPECT_THROW(CheckedMul(std::uint64_t{1} << 32, std::uint64_t{1} << 32),
               InvalidArgument);

  EXPECT_EQ(CheckedAdd(2, 3), 5u);
  EXPECT_EQ(CheckedAdd(~std::uint64_t{0}, 0), ~std::uint64_t{0});
  EXPECT_THROW(CheckedAdd(~std::uint64_t{0}, 1), InvalidArgument);
}

TEST(AddressTest, CheckedPow) {
  EXPECT_EQ(CheckedPow(2, 0), 1u);
  EXPECT_EQ(CheckedPow(2, 10), 1024u);
  EXPECT_EQ(CheckedPow(10, 6), 1000000u);
  EXPECT_THROW(CheckedPow(2, 64), InvalidArgument);
}

}  // namespace
}  // namespace dcn::topo
