// Component labeling and incremental forest repair: the repair engine must
// produce the same partition as a from-scratch labeling for any kill set,
// and the resilience metrics built on it must return byte-identical values
// to the per-source-BFS implementation they replaced.
#include "graph/components.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "graph/bfs.h"
#include "metrics/resilience.h"
#include "topology/factory.h"

namespace dcn {
namespace {

graph::Graph RandomGraph(Rng& rng, std::size_t nodes, std::size_t edges) {
  graph::Graph g;
  for (std::size_t i = 0; i < nodes; ++i) g.AddNode(graph::NodeKind::kServer);
  for (std::size_t i = 1; i < nodes; ++i) {
    g.AddEdge(static_cast<graph::NodeId>(rng.NextUint64(i)),
              static_cast<graph::NodeId>(i));
  }
  for (std::size_t e = nodes - 1; e < edges; ++e) {
    const auto u = static_cast<graph::NodeId>(rng.NextUint64(nodes));
    const auto v = static_cast<graph::NodeId>(rng.NextUint64(nodes));
    if (u != v) g.AddEdge(u, v);
  }
  return g;
}

// Same partition, allowing different component ids (Repair re-uses intact
// ids and mints fresh ones for split-off fragments, so ids need not match a
// canonical relabeling).
void ExpectSamePartition(const graph::ComponentSet& got,
                         const graph::ComponentSet& want) {
  ASSERT_EQ(got.comp.size(), want.comp.size());
  std::map<std::int32_t, std::int32_t> fwd;
  std::map<std::int32_t, std::int32_t> bwd;
  for (std::size_t n = 0; n < got.comp.size(); ++n) {
    const std::int32_t a = got.comp[n];
    const std::int32_t b = want.comp[n];
    ASSERT_EQ(a < 0, b < 0) << "node " << n << " dead/live mismatch";
    if (a < 0) continue;
    const auto [fit, finserted] = fwd.emplace(a, b);
    EXPECT_EQ(fit->second, b) << "node " << n << " splits component " << a;
    const auto [bit, binserted] = bwd.emplace(b, a);
    EXPECT_EQ(bit->second, a) << "node " << n << " merges into component " << b;
  }
}

TEST(LabelComponentsTest, MatchesBfsReachability) {
  Rng rng{5};
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t nodes = 10 + rng.NextUint64(30);
    const graph::Graph g = RandomGraph(rng, nodes, nodes + nodes / 2);
    graph::FailureSet failures{g};
    for (int k = 0; k < 5; ++k) {
      failures.KillEdge(static_cast<graph::EdgeId>(rng.NextUint64(g.EdgeCount())));
    }
    failures.KillNode(static_cast<graph::NodeId>(rng.NextUint64(nodes)));
    graph::ComponentSet comp;
    graph::LabelComponents(g.Csr(), &failures, comp);
    graph::TraversalScope ws;
    for (graph::NodeId src = 0; static_cast<std::size_t>(src) < nodes; ++src) {
      if (failures.NodeDead(src)) {
        EXPECT_EQ(comp.ComponentOf(src), graph::kDeadComponent);
        continue;
      }
      graph::BfsDistances(g.Csr(), src, *ws, &failures);
      for (graph::NodeId dst = 0; static_cast<std::size_t>(dst) < nodes; ++dst) {
        if (failures.NodeDead(dst)) continue;
        EXPECT_EQ(comp.SameComponent(src, dst), ws->Visited(dst))
            << "trial " << trial << ": " << src << " vs " << dst;
      }
    }
  }
}

TEST(LabelComponentsTest, IdsAreCanonical) {
  // Two triangles, no bridge: ids ascend with each component's lowest node.
  graph::Graph g;
  for (int i = 0; i < 6; ++i) g.AddNode(graph::NodeKind::kServer);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  g.AddEdge(5, 3);
  graph::ComponentSet comp;
  graph::LabelComponents(g.Csr(), nullptr, comp);
  EXPECT_EQ(comp.count, 2u);
  for (int n = 0; n < 3; ++n) EXPECT_EQ(comp.ComponentOf(n), 0);
  for (int n = 3; n < 6; ++n) EXPECT_EQ(comp.ComponentOf(n), 1);
}

TEST(ComponentForestTest, RepairMatchesFullLabelingOnRandomKills) {
  Rng rng{23};
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t nodes = 12 + rng.NextUint64(40);
    const graph::Graph g = RandomGraph(rng, nodes, nodes + nodes / 2);
    const graph::CsrView& csr = g.Csr();
    const graph::ComponentForest forest{csr};
    ExpectSamePartition(forest.Intact(), [&] {
      graph::ComponentSet full;
      graph::LabelComponents(csr, nullptr, full);
      return full;
    }());

    graph::ComponentRepairScratch scratch;
    graph::ComponentSet repaired;
    for (int kill_trial = 0; kill_trial < 8; ++kill_trial) {
      graph::FailureSet failures{g};
      std::vector<graph::NodeId> dead_nodes;
      std::vector<graph::EdgeId> dead_edges;
      const std::size_t node_kills = rng.NextUint64(4);
      const std::size_t edge_kills = rng.NextUint64(5);
      for (std::size_t k = 0; k < node_kills; ++k) {
        const auto n = static_cast<graph::NodeId>(rng.NextUint64(nodes));
        if (failures.NodeDead(n)) continue;
        failures.KillNode(n);
        dead_nodes.push_back(n);
      }
      for (std::size_t k = 0; k < edge_kills; ++k) {
        const auto e = static_cast<graph::EdgeId>(rng.NextUint64(g.EdgeCount()));
        if (failures.EdgeDead(e)) continue;
        failures.KillEdge(e);
        dead_edges.push_back(e);
      }
      forest.Repair(dead_nodes, dead_edges, failures, scratch, repaired);
      graph::ComponentSet full;
      graph::LabelComponents(csr, &failures, full);
      SCOPED_TRACE("trial " + std::to_string(trial) + " kill " +
                   std::to_string(kill_trial));
      ExpectSamePartition(repaired, full);
    }
  }
}

class ComponentFamilies : public ::testing::TestWithParam<std::string> {};

TEST_P(ComponentFamilies, RepairMatchesFullLabelingPerSwitchKill) {
  const auto net = topo::MakeTopology(GetParam());
  const graph::CsrView& csr = net->Network().Csr();
  const graph::ComponentForest forest{csr};
  graph::ComponentRepairScratch scratch;
  graph::ComponentSet repaired;
  graph::ComponentSet full;
  std::size_t checked = 0;
  for (graph::NodeId node = 0;
       static_cast<std::size_t>(node) < csr.NodeCount() && checked < 40;
       ++node) {
    if (!csr.IsSwitch(node)) continue;
    ++checked;
    graph::FailureSet failures{net->Network()};
    failures.KillNode(node);
    forest.Repair({&node, 1}, {}, failures, scratch, repaired);
    graph::LabelComponents(csr, &failures, full);
    SCOPED_TRACE("switch " + std::to_string(node));
    ExpectSamePartition(repaired, full);
  }
  EXPECT_GT(checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Families, ComponentFamilies,
                         ::testing::ValuesIn(topo::SupportedSpecs()));

// --- Byte-identity of the metrics against the retained BFS reference ------

// The per-source-BFS implementation PairDisconnectionFraction used before
// the component engine, drawing from the identical Rng::Fork streams.
double ReferencePairDisconnection(const topo::Topology& net,
                                  const graph::FailureSet& failures,
                                  std::size_t sample_pairs, Rng& rng) {
  const graph::CsrView& csr = net.Network().Csr();
  std::vector<graph::NodeId> alive;
  for (std::size_t i = 0; i < csr.ServerCount(); ++i) {
    const graph::NodeId server = csr.ServerIdAt(i);
    if (!failures.NodeDead(server)) alive.push_back(server);
  }
  if (alive.size() < 2) return 0.0;
  const std::size_t sources = std::min<std::size_t>(
      alive.size(), std::max<std::size_t>(1, sample_pairs / 16));
  const std::size_t pairs_per_source = (sample_pairs + sources - 1) / sources;
  const Rng base = rng.Fork();
  std::size_t disconnected = 0;
  std::size_t measured = 0;
  graph::TraversalScope ws;
  for (std::size_t s = 0; s < sources; ++s) {
    Rng trial_rng = base.Fork(s);
    const graph::NodeId src = alive[trial_rng.NextUint64(alive.size())];
    graph::BfsDistances(csr, src, *ws, &failures);
    for (std::size_t p = 0; p < pairs_per_source; ++p) {
      graph::NodeId dst = src;
      while (dst == src) dst = alive[trial_rng.NextUint64(alive.size())];
      ++measured;
      if (!ws->Visited(dst)) ++disconnected;
    }
  }
  return static_cast<double>(disconnected) / static_cast<double>(measured);
}

double ReferenceWorstSingleSwitch(const topo::Topology& net,
                                  std::size_t sample_pairs,
                                  std::size_t sample_switches, Rng& rng) {
  const graph::Graph& g = net.Network();
  std::vector<graph::NodeId> switches;
  for (graph::NodeId node = 0; static_cast<std::size_t>(node) < g.NodeCount();
       ++node) {
    if (g.IsSwitch(node)) switches.push_back(node);
  }
  if (sample_switches > 0 && sample_switches < switches.size()) {
    rng.Shuffle(switches);
    switches.resize(sample_switches);
  }
  const Rng base = rng.Fork();
  double worst = 0.0;
  for (std::size_t i = 0; i < switches.size(); ++i) {
    graph::FailureSet failures{g};
    failures.KillNode(switches[i]);
    Rng pair_rng = base.Fork(i);
    worst = std::max(
        worst, ReferencePairDisconnection(net, failures, sample_pairs, pair_rng));
  }
  return worst;
}

TEST(ResilienceBitIdentityTest, PairDisconnectionMatchesBfsReference) {
  const auto net = topo::MakeTopology("abccc:n=3,k=1,c=2");
  Rng seeds{0xfeed};
  // Cover both historical regimes (per-source BFS and MS-BFS lane batches)
  // and several failure shapes; every fraction must match to the last bit.
  for (const std::size_t sample_pairs : {5ul, 64ul, 400ul, 700ul}) {
    for (int f = 0; f < 4; ++f) {
      graph::FailureSet failures{net->Network()};
      for (int k = 0; k <= f; ++k) {
        failures.KillNode(
            static_cast<graph::NodeId>(seeds.NextUint64(net->Network().NodeCount())));
        failures.KillEdge(
            static_cast<graph::EdgeId>(seeds.NextUint64(net->Network().EdgeCount())));
      }
      const std::uint64_t seed = seeds();
      Rng a{seed};
      Rng b{seed};
      EXPECT_EQ(
          metrics::PairDisconnectionFraction(*net, failures, sample_pairs, a),
          ReferencePairDisconnection(*net, failures, sample_pairs, b))
          << "pairs=" << sample_pairs << " f=" << f;
    }
  }
}

TEST(ResilienceBitIdentityTest, WorstSingleSwitchMatchesBfsReference) {
  for (const char* spec : {"abccc:n=3,k=1,c=2", "bcube:n=3,k=1", "fattree:k=4"}) {
    SCOPED_TRACE(spec);
    const auto net = topo::MakeTopology(spec);
    Rng a{42};
    Rng b{42};
    EXPECT_EQ(metrics::WorstSingleSwitchDisconnection(*net, 96, 12, a),
              ReferenceWorstSingleSwitch(*net, 96, 12, b));
  }
}

TEST(ResilienceBitIdentityTest, ThreadCountInvariant) {
  const auto net = topo::MakeTopology("bcube:n=3,k=1");
  SetThreadCount(1);
  Rng r1{7};
  const double serial = metrics::WorstSingleSwitchDisconnection(*net, 128, 16, r1);
  for (int threads : {3, 7}) {
    SetThreadCount(threads);
    Rng rn{7};
    EXPECT_EQ(serial, metrics::WorstSingleSwitchDisconnection(*net, 128, 16, rn))
        << "threads=" << threads;
  }
  SetThreadCount(0);
}

}  // namespace
}  // namespace dcn
