#include "routing/baseline_fault.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "graph/bfs.h"
#include "routing/route.h"
#include "sim/failures.h"

namespace dcn::routing {
namespace {

using topo::Bcube;
using topo::BcubeParams;
using topo::Dcell;
using topo::DcellParams;
using topo::Digits;
using topo::FatTree;
using topo::FatTreeParams;

// ---------------------------------------------------------------------------
// BCube
// ---------------------------------------------------------------------------

TEST(BcubeFaultTest, NoFailuresFixesDigitsDirectly) {
  const Bcube net{BcubeParams{4, 2}};
  graph::FailureSet failures{net.Network()};
  dcn::Rng rng{1};
  FaultRoutingStats stats;
  const Route route =
      BcubeFaultTolerantRoute(net, 0, 63, failures, rng, {}, &stats);
  ASSERT_FALSE(route.Empty());
  EXPECT_EQ(ValidateRoute(net.Network(), route), "");
  EXPECT_EQ(stats.digit_fixes, 3);
  EXPECT_EQ(stats.plane_detours, 0);
  EXPECT_FALSE(stats.used_fallback);
}

TEST(BcubeFaultTest, DetoursAroundADeadSwitch) {
  const Bcube net{BcubeParams{4, 1}};
  const graph::NodeId src = net.ServerAt(Digits{0, 0});
  const graph::NodeId dst = net.ServerAt(Digits{3, 0});  // differs at level 0
  graph::FailureSet failures{net.Network()};
  failures.KillNode(net.SwitchAt(0, Digits{0, 0}));
  dcn::Rng rng{2};
  FaultRoutingOptions options;
  options.allow_bfs_fallback = false;
  FaultRoutingStats stats;
  const Route route =
      BcubeFaultTolerantRoute(net, src, dst, failures, rng, options, &stats);
  ASSERT_FALSE(route.Empty());
  EXPECT_EQ(ValidateRoute(net.Network(), route, &failures), "");
  EXPECT_GT(stats.plane_detours, 0);
}

TEST(BcubeFaultTest, SucceedsIffReachableWithFallback) {
  const Bcube net{BcubeParams{3, 2}};
  dcn::Rng fail_rng{31};
  const graph::FailureSet failures =
      sim::RandomFailures(net, 0.1, 0.1, 0.05, fail_rng);
  dcn::Rng rng{32};
  const auto servers = net.Servers();
  for (int trial = 0; trial < 50; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    if (src == dst) continue;
    const Route route = BcubeFaultTolerantRoute(net, src, dst, failures, rng);
    const bool reachable =
        !graph::ShortestPath(net.Network(), src, dst, &failures).empty();
    ASSERT_EQ(!route.Empty(), reachable);
    if (!route.Empty()) {
      ASSERT_EQ(ValidateRoute(net.Network(), route, &failures), "");
    }
  }
}

TEST(BcubeFaultTest, DeadEndpointsReturnEmpty) {
  const Bcube net{BcubeParams{4, 1}};
  graph::FailureSet failures{net.Network()};
  failures.KillNode(3);
  dcn::Rng rng{3};
  EXPECT_TRUE(BcubeFaultTolerantRoute(net, 3, 7, failures, rng).Empty());
  EXPECT_TRUE(BcubeFaultTolerantRoute(net, 7, 3, failures, rng).Empty());
}

// ---------------------------------------------------------------------------
// DCell
// ---------------------------------------------------------------------------

TEST(DcellFaultTest, NoFailuresMatchesPreferredRoute) {
  const Dcell net{DcellParams{4, 1}};
  graph::FailureSet failures{net.Network()};
  dcn::Rng rng{4};
  const Route route = DcellFaultTolerantRoute(net, 0, 17, failures, rng);
  ASSERT_FALSE(route.Empty());
  EXPECT_EQ(route.hops, net.Route(0, 17));
}

TEST(DcellFaultTest, ProxiesAroundADeadInterCellLink) {
  const Dcell net{DcellParams{4, 1}};
  // Kill the direct 0<->4 level-1 link (sub-cell 0 to sub-cell 1).
  graph::FailureSet failures{net.Network()};
  const graph::EdgeId direct = net.Network().FindEdge(0, 4);
  ASSERT_NE(direct, graph::kInvalidEdge);
  failures.KillEdge(direct);
  dcn::Rng rng{5};
  FaultRoutingOptions options;
  options.allow_bfs_fallback = false;
  FaultRoutingStats stats;
  const Route route =
      DcellFaultTolerantRoute(net, 0, 4, failures, rng, options, &stats);
  ASSERT_FALSE(route.Empty());
  EXPECT_EQ(ValidateRoute(net.Network(), route, &failures), "");
  EXPECT_GT(stats.plane_detours, 0);
}

TEST(DcellFaultTest, SucceedsIffReachableWithFallback) {
  const Dcell net{DcellParams{4, 1}};
  dcn::Rng fail_rng{41};
  const graph::FailureSet failures =
      sim::RandomFailures(net, 0.1, 0.1, 0.1, fail_rng);
  dcn::Rng rng{42};
  const auto servers = net.Servers();
  for (int trial = 0; trial < 60; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    if (src == dst) continue;
    const Route route = DcellFaultTolerantRoute(net, src, dst, failures, rng);
    const bool reachable =
        !graph::ShortestPath(net.Network(), src, dst, &failures).empty();
    ASSERT_EQ(!route.Empty(), reachable);
    if (!route.Empty()) {
      ASSERT_EQ(ValidateRoute(net.Network(), route, &failures), "");
    }
  }
}

// ---------------------------------------------------------------------------
// Fat-tree
// ---------------------------------------------------------------------------

TEST(FatTreeEcmpTest, CandidateCountsMatchLocality) {
  const FatTree net{FatTreeParams{4}};
  // Same edge switch: exactly 1 candidate.
  EXPECT_EQ(FatTreeEcmpRoutes(net, net.ServerIdOf(0, 0, 0),
                              net.ServerIdOf(0, 0, 1))
                .size(),
            1u);
  // Same pod: k/2 = 2.
  EXPECT_EQ(FatTreeEcmpRoutes(net, net.ServerIdOf(0, 0, 0),
                              net.ServerIdOf(0, 1, 0))
                .size(),
            2u);
  // Cross pod: (k/2)^2 = 4.
  const auto cross = FatTreeEcmpRoutes(net, net.ServerIdOf(0, 0, 0),
                                       net.ServerIdOf(2, 1, 1));
  EXPECT_EQ(cross.size(), 4u);
  for (const Route& route : cross) {
    EXPECT_EQ(ValidateRoute(net.Network(), route), "");
    EXPECT_EQ(route.LinkCount(), 6u);
  }
}

TEST(FatTreeFaultTest, RehashesAroundADeadCore) {
  const FatTree net{FatTreeParams{4}};
  const graph::NodeId src = net.ServerIdOf(0, 0, 0);
  const graph::NodeId dst = net.ServerIdOf(1, 0, 0);
  graph::FailureSet failures{net.Network()};
  failures.KillNode(net.CoreSwitch(0));
  failures.KillNode(net.CoreSwitch(1));  // kill agg-0's whole core group
  dcn::Rng rng{6};
  FaultRoutingOptions options;
  options.allow_bfs_fallback = false;
  FaultRoutingStats stats;
  const Route route =
      FatTreeFaultTolerantRoute(net, src, dst, failures, rng, options, &stats);
  ASSERT_FALSE(route.Empty());
  EXPECT_EQ(ValidateRoute(net.Network(), route, &failures), "");
}

TEST(FatTreeFaultTest, EdgeSwitchLossKillsItsHosts) {
  const FatTree net{FatTreeParams{4}};
  const graph::NodeId src = net.ServerIdOf(0, 0, 0);
  const graph::NodeId dst = net.ServerIdOf(1, 0, 0);
  graph::FailureSet failures{net.Network()};
  failures.KillNode(net.EdgeSwitch(0, 0));
  dcn::Rng rng{7};
  // Both endpoints alive, but src's only uplink is gone: no route even with
  // fallback.
  EXPECT_TRUE(FatTreeFaultTolerantRoute(net, src, dst, failures, rng).Empty());
}

TEST(FatTreeFaultTest, SucceedsIffReachableWithFallback) {
  const FatTree net{FatTreeParams{4}};
  dcn::Rng fail_rng{51};
  const graph::FailureSet failures =
      sim::RandomFailures(net, 0.0, 0.15, 0.05, fail_rng);
  dcn::Rng rng{52};
  const auto servers = net.Servers();
  for (int trial = 0; trial < 50; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    if (src == dst) continue;
    const Route route = FatTreeFaultTolerantRoute(net, src, dst, failures, rng);
    const bool reachable =
        !graph::ShortestPath(net.Network(), src, dst, &failures).empty();
    ASSERT_EQ(!route.Empty(), reachable);
  }
}

// ---------------------------------------------------------------------------
// Generic proxy repair (used by FiConn and any Topology)
// ---------------------------------------------------------------------------

TEST(ProxyRepairTest, FiConnSucceedsIffReachableWithFallback) {
  const topo::FiConn net{8, 2};
  dcn::Rng fail_rng{61};
  const graph::FailureSet failures =
      sim::RandomFailures(net, 0.05, 0.05, 0.05, fail_rng);
  dcn::Rng rng{62};
  const auto servers = net.Servers();
  for (int trial = 0; trial < 50; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    if (src == dst) continue;
    const Route route = ProxyRepairRoute(net, src, dst, failures, rng);
    const bool reachable =
        !graph::ShortestPath(net.Network(), src, dst, &failures).empty();
    ASSERT_EQ(!route.Empty(), reachable);
    if (!route.Empty()) {
      ASSERT_EQ(ValidateRoute(net.Network(), route, &failures), "");
    }
  }
}

TEST(ProxyRepairTest, FiConnProxiesAroundADeadLevelLink) {
  const topo::FiConn net{4, 1};
  // Kill the 1<->5 level-1 link between copies 0 and 1.
  graph::FailureSet failures{net.Network()};
  const graph::EdgeId direct = net.Network().FindEdge(1, 5);
  ASSERT_NE(direct, graph::kInvalidEdge);
  failures.KillEdge(direct);
  dcn::Rng rng{63};
  FaultRoutingOptions options;
  options.allow_bfs_fallback = false;
  FaultRoutingStats stats;
  const Route route = ProxyRepairRoute(net, 0, 4, failures, rng, options, &stats);
  ASSERT_FALSE(route.Empty());
  EXPECT_EQ(ValidateRoute(net.Network(), route, &failures), "");
  EXPECT_GT(stats.plane_detours, 0);
}

TEST(ProxyRepairTest, MatchesNativeRouteWhenHealthy) {
  const topo::FiConn net{4, 2};
  graph::FailureSet failures{net.Network()};
  dcn::Rng rng{64};
  const Route route = ProxyRepairRoute(net, 0, 40, failures, rng);
  EXPECT_EQ(route.hops, net.Route(0, 40));
}

}  // namespace
}  // namespace dcn::routing
