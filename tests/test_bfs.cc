#include "graph/bfs.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace dcn::graph {
namespace {

// Path graph: 0 - 1 - 2 - 3 (all servers).
Graph MakePath(int nodes) {
  Graph g;
  for (int i = 0; i < nodes; ++i) g.AddNode(NodeKind::kServer);
  for (int i = 0; i + 1 < nodes; ++i) g.AddEdge(i, i + 1);
  return g;
}

TEST(BfsTest, DistancesOnPath) {
  const Graph g = MakePath(5);
  const std::vector<int> dist = BfsDistances(g, 0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(dist[i], i);
}

TEST(BfsTest, UnreachableComponent) {
  Graph g = MakePath(3);
  g.AddNode(NodeKind::kServer);  // isolated node 3
  const std::vector<int> dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(BfsTest, FailedEdgeForcesDetour) {
  // Cycle 0-1-2-3-0; killing edge 0-1 makes dist(0,1) = 3.
  Graph g;
  for (int i = 0; i < 4; ++i) g.AddNode(NodeKind::kServer);
  const EdgeId e01 = g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 0);
  FailureSet failures{g};
  failures.KillEdge(e01);
  const std::vector<int> dist = BfsDistances(g, 0, &failures);
  EXPECT_EQ(dist[1], 3);
}

TEST(BfsTest, DeadSourceSeesNothing) {
  const Graph g = MakePath(3);
  FailureSet failures{g};
  failures.KillNode(0);
  const std::vector<int> dist = BfsDistances(g, 0, &failures);
  for (int d : dist) EXPECT_EQ(d, kUnreachable);
}

TEST(BfsTest, DeadRelayBlocksTraffic) {
  const Graph g = MakePath(3);
  FailureSet failures{g};
  failures.KillNode(1);
  const std::vector<int> dist = BfsDistances(g, 0, &failures);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], kUnreachable);
  EXPECT_EQ(dist[2], kUnreachable);
}

TEST(ShortestPathTest, FindsAShortestPath) {
  const Graph g = MakePath(4);
  const std::vector<NodeId> path = ShortestPath(g, 0, 3);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 3);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(g.Adjacent(path[i], path[i + 1]));
  }
}

TEST(ShortestPathTest, TrivialAndImpossibleCases) {
  const Graph g = MakePath(3);
  EXPECT_EQ(ShortestPath(g, 1, 1), std::vector<NodeId>{1});
  Graph h = MakePath(2);
  h.AddNode(NodeKind::kServer);
  EXPECT_TRUE(ShortestPath(h, 0, 2).empty());
  FailureSet failures{g};
  failures.KillNode(2);
  EXPECT_TRUE(ShortestPath(g, 0, 2, &failures).empty());
}

TEST(ShortestPathTest, PathLengthMatchesBfsDistance) {
  // Grid-ish graph with shortcuts.
  Graph g;
  for (int i = 0; i < 6; ++i) g.AddNode(NodeKind::kServer);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 5);
  g.AddEdge(0, 3);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  g.AddEdge(1, 4);
  const std::vector<int> dist = BfsDistances(g, 0);
  for (NodeId target = 0; target < 6; ++target) {
    const std::vector<NodeId> path = ShortestPath(g, 0, target);
    EXPECT_EQ(static_cast<int>(path.size()) - 1, dist[target]);
  }
}

TEST(ConnectivityTest, ReachableCountAndIsConnected) {
  Graph g = MakePath(4);
  EXPECT_EQ(ReachableCount(g, 0), 4u);
  EXPECT_TRUE(IsConnected(g));
  g.AddNode(NodeKind::kServer);
  EXPECT_FALSE(IsConnected(g));
}

TEST(ConnectivityTest, FailuresSplitTheGraph) {
  const Graph g = MakePath(5);
  FailureSet failures{g};
  failures.KillNode(2);
  EXPECT_FALSE(IsConnected(g, &failures));
  EXPECT_EQ(ReachableCount(g, 0, &failures), 2u);
}

TEST(ConnectivityTest, EmptyAndSingletonGraphsAreConnected) {
  Graph g;
  EXPECT_TRUE(IsConnected(g));
  g.AddNode(NodeKind::kServer);
  EXPECT_TRUE(IsConnected(g));
}

TEST(BfsTest, SourceOutOfRangeThrows) {
  const Graph g = MakePath(2);
  EXPECT_THROW(BfsDistances(g, 7), InvalidArgument);
  EXPECT_THROW(ShortestPath(g, 0, 7), InvalidArgument);
}

}  // namespace
}  // namespace dcn::graph
