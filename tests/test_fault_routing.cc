#include "routing/fault_routing.h"

#include <gtest/gtest.h>

#include "common/error.h"

#include <tuple>

#include "common/rng.h"
#include "graph/bfs.h"
#include "routing/route.h"
#include "sim/failures.h"
#include "topology/abccc.h"

namespace dcn::routing {
namespace {

using topo::Abccc;
using topo::AbcccParams;
using topo::Digits;

TEST(FaultRoutingTest, NoFailuresBehavesLikeNormalRouting) {
  const Abccc net{AbcccParams{4, 2, 2}};
  graph::FailureSet failures{net.Network()};
  dcn::Rng rng{1};
  FaultRoutingStats stats;
  const Route route = AbcccFaultTolerantRoute(net, 3, 150, failures, rng, {}, &stats);
  ASSERT_FALSE(route.Empty());
  EXPECT_EQ(route.Src(), 3);
  EXPECT_EQ(route.Dst(), 150);
  EXPECT_EQ(ValidateRoute(net.Network(), route, &failures), "");
  EXPECT_FALSE(stats.used_fallback);
  EXPECT_EQ(stats.plane_detours, 0);
}

TEST(FaultRoutingTest, DeadEndpointsGiveEmptyRoute) {
  const Abccc net{AbcccParams{4, 1, 2}};
  graph::FailureSet failures{net.Network()};
  failures.KillNode(0);
  dcn::Rng rng{2};
  EXPECT_TRUE(AbcccFaultTolerantRoute(net, 0, 5, failures, rng).Empty());
  EXPECT_TRUE(AbcccFaultTolerantRoute(net, 5, 0, failures, rng).Empty());
}

TEST(FaultRoutingTest, SelfRouteSurvivesAnything) {
  const Abccc net{AbcccParams{4, 1, 2}};
  graph::FailureSet failures{net.Network()};
  dcn::Rng rng{3};
  const Route route = AbcccFaultTolerantRoute(net, 7, 7, failures, rng);
  ASSERT_EQ(route.hops.size(), 1u);
}

TEST(FaultRoutingTest, RoutesAroundADeadLevelSwitch) {
  const AbcccParams p{4, 2, 2};
  const Abccc net{p};
  const graph::NodeId src = net.ServerAt(Digits{0, 0, 0}, 0);
  const graph::NodeId dst = net.ServerAt(Digits{3, 0, 0}, 0);
  // Kill the level-0 switch the direct correction would use.
  graph::FailureSet failures{net.Network()};
  const graph::NodeId sw = net.LevelSwitchAt(0, Digits{0, 0, 0});
  failures.KillNode(sw);
  dcn::Rng rng{4};
  FaultRoutingStats stats;
  FaultRoutingOptions options;
  options.allow_bfs_fallback = false;  // force the structured repair
  const Route route =
      AbcccFaultTolerantRoute(net, src, dst, failures, rng, options, &stats);
  ASSERT_FALSE(route.Empty());
  EXPECT_EQ(ValidateRoute(net.Network(), route, &failures), "");
  EXPECT_GT(stats.plane_detours, 0);
  for (graph::NodeId hop : route.hops) EXPECT_NE(hop, sw);
}

TEST(FaultRoutingTest, PostponeReordersAroundDeadAgent) {
  const AbcccParams p{4, 2, 2};
  const Abccc net{p};
  // src role 0, needs digits 0 and 2 fixed; the agent of level 2 in the
  // source row is dead, so level 0 must be fixed first (leaving the row),
  // reaching level 2's agent in another row.
  const graph::NodeId src = net.ServerAt(Digits{0, 0, 0}, 0);
  const graph::NodeId dst = net.ServerAt(Digits{1, 0, 1}, 0);
  graph::FailureSet failures{net.Network()};
  failures.KillNode(net.ServerAt(Digits{0, 0, 0}, 2));
  dcn::Rng rng{5};
  FaultRoutingStats stats;
  FaultRoutingOptions options;
  options.allow_bfs_fallback = false;
  const Route route =
      AbcccFaultTolerantRoute(net, src, dst, failures, rng, options, &stats);
  ASSERT_FALSE(route.Empty());
  EXPECT_EQ(ValidateRoute(net.Network(), route, &failures), "");
}

class FaultSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

// Property: with BFS fallback enabled, fault-tolerant routing succeeds if and
// only if the destination is reachable, and every produced route is walkable
// under the failure set.
TEST_P(FaultSweep, SucceedsExactlyWhenReachable) {
  const auto [server_f, switch_f, link_f] = GetParam();
  const Abccc net{AbcccParams{3, 2, 2}};
  dcn::Rng fail_rng{97};
  const graph::FailureSet failures =
      sim::RandomFailures(net, server_f, switch_f, link_f, fail_rng);
  dcn::Rng rng{98};
  const auto servers = net.Servers();
  int produced = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    if (src == dst) continue;
    const Route route = AbcccFaultTolerantRoute(net, src, dst, failures, rng);
    const bool reachable =
        !graph::ShortestPath(net.Network(), src, dst, &failures).empty();
    EXPECT_EQ(!route.Empty(), reachable) << src << "->" << dst;
    if (!route.Empty()) {
      EXPECT_EQ(ValidateRoute(net.Network(), route, &failures), "");
      ++produced;
    }
  }
  // At moderate failure rates most pairs stay connected; at the harshest
  // point the network may be fully partitioned, which is also a valid
  // outcome of the iff-property above.
  if (server_f + switch_f + link_f <= 0.45) {
    EXPECT_GT(produced, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Rates, FaultSweep,
    ::testing::Values(std::tuple{0.0, 0.05, 0.0}, std::tuple{0.05, 0.0, 0.0},
                      std::tuple{0.0, 0.0, 0.05}, std::tuple{0.05, 0.05, 0.05},
                      std::tuple{0.15, 0.15, 0.1}, std::tuple{0.3, 0.3, 0.2}));

TEST(FaultRoutingTest, GreedyWithoutFallbackMayFailButNeverLies) {
  const Abccc net{AbcccParams{3, 2, 2}};
  dcn::Rng fail_rng{11};
  const graph::FailureSet failures = sim::RandomFailures(net, 0.2, 0.2, 0.1, fail_rng);
  dcn::Rng rng{12};
  FaultRoutingOptions options;
  options.allow_bfs_fallback = false;
  const auto servers = net.Servers();
  for (int trial = 0; trial < 60; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    if (src == dst) continue;
    const Route route =
        AbcccFaultTolerantRoute(net, src, dst, failures, rng, options);
    if (!route.Empty()) {
      EXPECT_EQ(ValidateRoute(net.Network(), route, &failures), "");
      EXPECT_EQ(route.Src(), src);
      EXPECT_EQ(route.Dst(), dst);
    }
  }
}

TEST(FaultRoutingTest, StatsCountDigitFixes) {
  const Abccc net{AbcccParams{4, 2, 2}};
  graph::FailureSet failures{net.Network()};
  dcn::Rng rng{13};
  FaultRoutingStats stats;
  const graph::NodeId src = net.ServerAt(Digits{0, 0, 0}, 0);
  const graph::NodeId dst = net.ServerAt(Digits{1, 2, 3}, 0);
  const Route route =
      AbcccFaultTolerantRoute(net, src, dst, failures, rng, {}, &stats);
  ASSERT_FALSE(route.Empty());
  EXPECT_EQ(stats.digit_fixes, 3);
  EXPECT_EQ(stats.plane_detours, 0);
}

}  // namespace
}  // namespace dcn::routing
