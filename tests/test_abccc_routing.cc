#include "routing/abccc_routing.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "common/error.h"
#include "common/rng.h"
#include "graph/bfs.h"
#include "routing/route.h"
#include "topology/abccc.h"

namespace dcn::routing {
namespace {

using topo::Abccc;
using topo::AbcccAddress;
using topo::AbcccParams;
using topo::Digits;

// Independent accounting of what a digit-fixing walk must cost: 2 links per
// corrected level plus 2 links per agent-role change along the way.
std::size_t ExpectedWalkLength(const AbcccParams& p, const AbcccAddress& src,
                               const AbcccAddress& dst,
                               const std::vector<int>& order) {
  std::size_t links = 2 * order.size();
  int role = src.role;
  for (int level : order) {
    const int agent = p.AgentRole(level);
    if (agent != role) {
      links += 2;
      role = agent;
    }
  }
  if (role != dst.role) links += 2;
  return links;
}

class RoutingSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {
 protected:
  AbcccParams P() const {
    const auto [n, k, c] = GetParam();
    return AbcccParams{n, k, c};
  }
};

TEST_P(RoutingSweep, AllStrategiesProduceValidRoutes) {
  const Abccc net{P()};
  dcn::Rng rng{101};
  const auto servers = net.Servers();
  for (int trial = 0; trial < 50; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    for (PermutationStrategy strategy :
         {PermutationStrategy::kSequential, PermutationStrategy::kGroupedFromSource,
          PermutationStrategy::kRandom, PermutationStrategy::kBalancedHash}) {
      const Route route = AbcccRoute(net, src, dst, strategy, &rng);
      ASSERT_FALSE(route.Empty());
      EXPECT_EQ(route.Src(), src);
      EXPECT_EQ(route.Dst(), dst);
      const std::string problem = ValidateRoute(net.Network(), route);
      EXPECT_EQ(problem, "") << net.Describe() << " " << ToString(strategy);
      EXPECT_LE(static_cast<int>(route.LinkCount()), net.RouteLengthBound());
    }
  }
}

TEST_P(RoutingSweep, LengthMatchesWalkAccounting) {
  const Abccc net{P()};
  dcn::Rng rng{202};
  const auto servers = net.Servers();
  for (int trial = 0; trial < 50; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    const AbcccAddress from = net.AddressOf(src);
    const AbcccAddress to = net.AddressOf(dst);
    for (PermutationStrategy strategy :
         {PermutationStrategy::kSequential, PermutationStrategy::kGroupedFromSource,
          PermutationStrategy::kRandom}) {
      dcn::Rng order_rng{static_cast<std::uint64_t>(trial) * 7 + 1};
      const std::vector<int> order =
          MakeLevelOrder(net, from, to, strategy, &order_rng);
      const Route route{net.RouteWithLevelOrder(src, dst, order)};
      EXPECT_EQ(route.LinkCount(), ExpectedWalkLength(net.Params(), from, to, order));
    }
  }
}

TEST_P(RoutingSweep, GroupedNeverLongerThanSequential) {
  const Abccc net{P()};
  dcn::Rng rng{303};
  const auto servers = net.Servers();
  for (int trial = 0; trial < 100; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    const Route grouped =
        AbcccRoute(net, src, dst, PermutationStrategy::kGroupedFromSource);
    const Route sequential =
        AbcccRoute(net, src, dst, PermutationStrategy::kSequential);
    EXPECT_LE(grouped.LinkCount(), sequential.LinkCount());
  }
}

TEST_P(RoutingSweep, RouteNeverShorterThanBfs) {
  const Abccc net{P()};
  dcn::Rng rng{404};
  const auto servers = net.Servers();
  for (int trial = 0; trial < 20; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const std::vector<int> dist = graph::BfsDistances(net.Network(), src);
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    const Route route = AbcccRoute(net, src, dst);
    EXPECT_GE(static_cast<int>(route.LinkCount()), dist[dst]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoutingSweep,
    ::testing::Values(std::tuple{2, 1, 2}, std::tuple{2, 3, 2},
                      std::tuple{3, 2, 2}, std::tuple{3, 2, 3},
                      std::tuple{4, 1, 2}, std::tuple{4, 2, 3},
                      std::tuple{4, 2, 4}, std::tuple{4, 3, 2},
                      std::tuple{5, 2, 3}, std::tuple{6, 1, 2}));

TEST(AbcccRoutingTest, RouteToSelfIsTrivial) {
  const Abccc net{AbcccParams{4, 2, 2}};
  const Route route = AbcccRoute(net, 5, 5);
  ASSERT_EQ(route.hops.size(), 1u);
  EXPECT_EQ(route.hops[0], 5);
  EXPECT_EQ(route.LinkCount(), 0u);
}

TEST(AbcccRoutingTest, SameRowUsesOnlyTheCrossbar) {
  const topo::AbcccParams p{4, 2, 2};
  const Abccc net{p};
  const graph::NodeId a = net.ServerAtRow(7, 0);
  const graph::NodeId b = net.ServerAtRow(7, 2);
  const Route route = AbcccRoute(net, a, b);
  ASSERT_EQ(route.hops.size(), 3u);
  EXPECT_EQ(route.hops[1], net.CrossbarAt(7));
}

TEST(AbcccRoutingTest, SingleDigitCorrectionFromAgent) {
  const topo::AbcccParams p{4, 2, 2};
  const Abccc net{p};
  // src is the agent of level 1 (role 1); fix only digit 1: 2 links.
  const graph::NodeId src = net.ServerAt(Digits{0, 0, 0}, 1);
  const graph::NodeId dst = net.ServerAt(Digits{0, 3, 0}, 1);
  const Route route = AbcccRoute(net, src, dst);
  EXPECT_EQ(route.LinkCount(), 2u);
  EXPECT_EQ(route.hops[1], net.LevelSwitchAt(1, Digits{0, 0, 0}));
}

TEST(AbcccRoutingTest, LevelOrderValidationRejectsBadOrders) {
  const Abccc net{AbcccParams{4, 2, 2}};
  const graph::NodeId src = net.ServerAt(Digits{0, 0, 0}, 0);
  const graph::NodeId dst = net.ServerAt(Digits{1, 1, 0}, 0);
  // Missing level 1.
  EXPECT_THROW(net.RouteWithLevelOrder(src, dst, std::vector<int>{0}),
               dcn::InvalidArgument);
  // Non-differing level 2.
  EXPECT_THROW(net.RouteWithLevelOrder(src, dst, std::vector<int>{0, 1, 2}),
               dcn::InvalidArgument);
  // Duplicate.
  EXPECT_THROW(net.RouteWithLevelOrder(src, dst, std::vector<int>{0, 0}),
               dcn::InvalidArgument);
  // Out of range.
  EXPECT_THROW(net.RouteWithLevelOrder(src, dst, std::vector<int>{0, 7}),
               dcn::InvalidArgument);
}

TEST(AbcccRoutingTest, RandomStrategyRequiresRng) {
  const Abccc net{AbcccParams{4, 1, 2}};
  EXPECT_THROW(AbcccRoute(net, 0, 5, PermutationStrategy::kRandom, nullptr),
               dcn::InvalidArgument);
}

TEST(AbcccRoutingTest, DefaultOrderStartsAtSourceAgentGroup) {
  // 6 levels, c=3 => roles 0,1,2 own levels {0,1},{2,3},{4,5}.
  const AbcccParams p{2, 5, 3};
  const Abccc net{p};
  const graph::NodeId src = net.ServerAt(Digits{0, 0, 0, 0, 0, 0}, 1);
  const graph::NodeId dst = net.ServerAt(Digits{1, 1, 1, 1, 1, 1}, 2);
  const std::vector<int> order =
      net.DefaultLevelOrder(net.AddressOf(src), net.AddressOf(dst));
  ASSERT_EQ(order.size(), 6u);
  // First fixes src's own levels (role 1: 2,3), last fixes dst's (role 2: 4,5).
  EXPECT_EQ(p.AgentRole(order.front()), 1);
  EXPECT_EQ(p.AgentRole(order.back()), 2);
}

TEST(AbcccRoutingTest, ToStringCoversStrategies) {
  EXPECT_STREQ(ToString(PermutationStrategy::kSequential), "sequential");
  EXPECT_STREQ(ToString(PermutationStrategy::kGroupedFromSource), "grouped");
  EXPECT_STREQ(ToString(PermutationStrategy::kRandom), "random");
  EXPECT_STREQ(ToString(PermutationStrategy::kBalancedHash), "balanced-hash");
}

TEST(AbcccRoutingTest, BalancedHashIsDeterministicAndNeedsNoRng) {
  const Abccc net{AbcccParams{4, 2, 2}};
  dcn::Rng rng{505};
  const auto servers = net.Servers();
  for (int trial = 0; trial < 40; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    const Route a =
        AbcccRoute(net, src, dst, PermutationStrategy::kBalancedHash, nullptr);
    const Route b =
        AbcccRoute(net, src, dst, PermutationStrategy::kBalancedHash, nullptr);
    EXPECT_EQ(a.hops, b.hops);
    EXPECT_EQ(ValidateRoute(net.Network(), a), "");
  }
}

TEST(AbcccRoutingTest, BalancedHashSpreadsFirstPlanes) {
  // Across many pairs that all differ in every digit, the first corrected
  // level should not always be the same one.
  const AbcccParams p{4, 2, 2};
  const Abccc net{p};
  std::set<int> first_levels;
  for (int a = 0; a < 4; ++a) {
    const topo::AbcccAddress src{topo::Digits{0, 0, 0}, 0};
    const topo::AbcccAddress dst{topo::Digits{(a % 3) + 1, ((a + 1) % 3) + 1,
                                              ((a + 2) % 3) + 1},
                                 0};
    const std::vector<int> order =
        MakeLevelOrder(net, src, dst, PermutationStrategy::kBalancedHash);
    ASSERT_EQ(order.size(), 3u);
    first_levels.insert(order.front());
  }
  EXPECT_GE(first_levels.size(), 2u);
}

}  // namespace
}  // namespace dcn::routing
