#include "sim/traffic.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "topology/abccc.h"

namespace dcn::sim {
namespace {

using topo::Abccc;
using topo::AbcccParams;

TEST(TrafficTest, PermutationIsADerangementOverServers) {
  const Abccc net{AbcccParams{4, 1, 2}};
  dcn::Rng rng{41};
  const std::vector<Flow> flows = PermutationTraffic(net, rng);
  ASSERT_EQ(flows.size(), net.ServerCount());
  std::set<graph::NodeId> sources, destinations;
  for (const Flow& flow : flows) {
    EXPECT_NE(flow.src, flow.dst);
    EXPECT_TRUE(net.Network().IsServer(flow.src));
    EXPECT_TRUE(net.Network().IsServer(flow.dst));
    EXPECT_TRUE(sources.insert(flow.src).second);
    EXPECT_TRUE(destinations.insert(flow.dst).second);
  }
  EXPECT_EQ(sources.size(), net.ServerCount());
  EXPECT_EQ(destinations.size(), net.ServerCount());
}

TEST(TrafficTest, PermutationIsSeedDeterministic) {
  const Abccc net{AbcccParams{4, 1, 2}};
  dcn::Rng rng_a{7}, rng_b{7};
  const auto a = PermutationTraffic(net, rng_a);
  const auto b = PermutationTraffic(net, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
  }
}

TEST(TrafficTest, AllToAllFullEnumeration) {
  const Abccc net{AbcccParams{2, 1, 2}};  // 8 servers
  dcn::Rng rng{42};
  const std::vector<Flow> flows = AllToAllTraffic(net, 1000000, rng);
  EXPECT_EQ(flows.size(), 8u * 7u);
  std::set<std::pair<graph::NodeId, graph::NodeId>> pairs;
  for (const Flow& flow : flows) {
    EXPECT_NE(flow.src, flow.dst);
    EXPECT_TRUE(pairs.insert({flow.src, flow.dst}).second);
  }
}

TEST(TrafficTest, AllToAllSampledWhenTooLarge) {
  const Abccc net{AbcccParams{4, 2, 2}};
  dcn::Rng rng{43};
  const std::vector<Flow> flows = AllToAllTraffic(net, 500, rng);
  EXPECT_EQ(flows.size(), 500u);
  for (const Flow& flow : flows) EXPECT_NE(flow.src, flow.dst);
}

TEST(TrafficTest, ManyToOneSharesOneDestination) {
  const Abccc net{AbcccParams{4, 1, 2}};
  dcn::Rng rng{44};
  const std::vector<Flow> flows = ManyToOneTraffic(net, 10, rng);
  ASSERT_EQ(flows.size(), 10u);
  std::set<graph::NodeId> sources;
  for (const Flow& flow : flows) {
    EXPECT_EQ(flow.dst, flows[0].dst);
    EXPECT_NE(flow.src, flow.dst);
    EXPECT_TRUE(sources.insert(flow.src).second);  // distinct senders
  }
  EXPECT_THROW(ManyToOneTraffic(net, net.ServerCount(), rng),
               dcn::InvalidArgument);
}

TEST(TrafficTest, BisectionTrafficCrossesTheCut) {
  const Abccc net{AbcccParams{4, 1, 2}};
  dcn::Rng rng{45};
  const auto [side_a, side_b] = net.BisectionHalves();
  const std::set<graph::NodeId> a_set(side_a.begin(), side_a.end());
  const std::vector<Flow> flows = BisectionTraffic(net, rng);
  EXPECT_EQ(flows.size(), 2 * std::min(side_a.size(), side_b.size()));
  for (const Flow& flow : flows) {
    EXPECT_NE(a_set.count(flow.src) > 0, a_set.count(flow.dst) > 0)
        << "flow does not cross the bisection";
  }
}

}  // namespace
}  // namespace dcn::sim
