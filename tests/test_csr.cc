// CSR-vs-Graph equivalence battery.
//
// The CSR view (graph/csr.h) is a pure re-layout: every traversal over it
// must produce results bit-identical to the adjacency-list Graph it
// snapshots. This suite checks the mirror on the paper topologies plus
// random graphs, and cross-checks the allocation-free BFS/Dinic against
// straightforward reference implementations (the pre-CSR algorithms),
// with and without failures.
#include "graph/csr.h"

#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "graph/bfs.h"
#include "graph/maxflow.h"
#include "graph/paths.h"
#include "graph/workspace.h"
#include "topology/abccc.h"
#include "topology/bcube.h"
#include "topology/dcell.h"
#include "topology/fattree.h"
#include "topology/ficonn.h"

namespace dcn::graph {
namespace {

// Random connected plant: spanning tree plus chords, mixed node kinds,
// occasional parallel links.
Graph RandomGraph(Rng& rng) {
  Graph g;
  const std::size_t nodes = static_cast<std::size_t>(rng.NextInt(8, 40));
  for (std::size_t i = 0; i < nodes; ++i) {
    // At least two servers so path queries always have endpoints.
    const bool server = i < 2 || rng.NextBernoulli(0.6);
    g.AddNode(server ? NodeKind::kServer : NodeKind::kSwitch);
  }
  for (std::size_t i = 1; i < nodes; ++i) {
    g.AddEdge(static_cast<NodeId>(i),
              static_cast<NodeId>(rng.NextUint64(i)));
  }
  const std::size_t chords = static_cast<std::size_t>(rng.NextInt(0, 14));
  for (std::size_t e = 0; e < chords; ++e) {
    const auto u = static_cast<NodeId>(rng.NextUint64(nodes));
    const auto v = static_cast<NodeId>(rng.NextUint64(nodes));
    if (u != v) g.AddEdge(u, v);  // duplicates allowed: parallel links
  }
  return g;
}

// Every graph the battery runs on: one of each paper topology at small
// scale, plus random plants.
std::vector<std::pair<std::string, Graph>> TestGraphs() {
  std::vector<std::pair<std::string, Graph>> graphs;
  graphs.emplace_back("abccc", topo::Abccc{topo::AbcccParams{3, 1, 2}}.Network());
  graphs.emplace_back("bcube", topo::Bcube{3, 1}.Network());
  graphs.emplace_back("dcell", topo::Dcell{3, 1}.Network());
  graphs.emplace_back("fattree", topo::FatTree{4}.Network());
  graphs.emplace_back("ficonn", topo::FiConn{4, 1}.Network());
  Rng rng{20260805};
  for (int i = 0; i < 6; ++i) {
    graphs.emplace_back("random-" + std::to_string(i), RandomGraph(rng));
  }
  return graphs;
}

FailureSet RandomFailures(const Graph& g, Rng& rng) {
  FailureSet failures{g};
  for (NodeId node = 0; static_cast<std::size_t>(node) < g.NodeCount(); ++node) {
    if (rng.NextBernoulli(0.08)) failures.KillNode(node);
  }
  for (EdgeId edge = 0; static_cast<std::size_t>(edge) < g.EdgeCount(); ++edge) {
    if (rng.NextBernoulli(0.08)) failures.KillEdge(edge);
  }
  return failures;
}

// Reference BFS: the straightforward adjacency-list version with a fresh
// O(V) distance array — exactly what the hot paths ran before the CSR
// refactor.
std::vector<int> ReferenceBfs(const Graph& g, NodeId src,
                              const FailureSet* failures) {
  std::vector<int> dist(g.NodeCount(), kUnreachable);
  if (failures != nullptr && failures->NodeDead(src)) return dist;
  std::deque<NodeId> queue{src};
  dist[static_cast<std::size_t>(src)] = 0;
  while (!queue.empty()) {
    const NodeId node = queue.front();
    queue.pop_front();
    for (const HalfEdge& half : g.Neighbors(node)) {
      if (failures != nullptr && !failures->HalfEdgeUsable(half)) continue;
      if (dist[static_cast<std::size_t>(half.to)] != kUnreachable) continue;
      dist[static_cast<std::size_t>(half.to)] =
          dist[static_cast<std::size_t>(node)] + 1;
      queue.push_back(half.to);
    }
  }
  return dist;
}

// Reference shortest path: full BFS sweep (no early exit), then a parent
// walk-back. The production version stops the sweep the moment dst is
// settled; since a node's parent is fixed by its first discoverer, both must
// return the same hop sequence.
std::vector<NodeId> ReferenceShortestPath(const Graph& g, NodeId src,
                                          NodeId dst,
                                          const FailureSet* failures) {
  if (failures != nullptr &&
      (failures->NodeDead(src) || failures->NodeDead(dst))) {
    return {};
  }
  if (src == dst) return {src};
  std::vector<int> dist(g.NodeCount(), kUnreachable);
  std::vector<NodeId> parent(g.NodeCount(), kInvalidNode);
  std::deque<NodeId> queue{src};
  dist[static_cast<std::size_t>(src)] = 0;
  while (!queue.empty()) {
    const NodeId node = queue.front();
    queue.pop_front();
    for (const HalfEdge& half : g.Neighbors(node)) {
      if (failures != nullptr && !failures->HalfEdgeUsable(half)) continue;
      if (dist[static_cast<std::size_t>(half.to)] != kUnreachable) continue;
      dist[static_cast<std::size_t>(half.to)] =
          dist[static_cast<std::size_t>(node)] + 1;
      parent[static_cast<std::size_t>(half.to)] = node;
      queue.push_back(half.to);
    }
  }
  if (dist[static_cast<std::size_t>(dst)] == kUnreachable) return {};
  std::vector<NodeId> path;
  for (NodeId at = dst; at != kInvalidNode;
       at = parent[static_cast<std::size_t>(at)]) {
    path.push_back(at);
  }
  return {path.rbegin(), path.rend()};
}

TEST(CsrViewTest, MirrorsGraphStructure) {
  for (const auto& [name, g] : TestGraphs()) {
    SCOPED_TRACE(name);
    const CsrView& csr = g.Csr();
    ASSERT_EQ(csr.NodeCount(), g.NodeCount());
    ASSERT_EQ(csr.EdgeCount(), g.EdgeCount());
    ASSERT_EQ(csr.ServerCount(), g.ServerCount());

    std::int32_t server_rank = 0;
    for (NodeId node = 0; static_cast<std::size_t>(node) < g.NodeCount();
         ++node) {
      ASSERT_EQ(csr.KindOf(node), g.KindOf(node));
      ASSERT_EQ(csr.IsServer(node), g.IsServer(node));
      ASSERT_EQ(csr.Degree(node), g.Degree(node));
      if (g.IsServer(node)) {
        ASSERT_EQ(csr.ServerIndexOf(node), server_rank);
        ASSERT_EQ(csr.Servers()[static_cast<std::size_t>(server_rank)], node);
        ++server_rank;
      } else {
        ASSERT_EQ(csr.ServerIndexOf(node), -1);
      }
      // Neighbor slices must preserve the Graph's insertion order exactly —
      // traversal tie-breaks depend on it.
      const auto& expected = g.Neighbors(node);
      const auto actual = csr.Neighbors(node);
      ASSERT_EQ(actual.size(), expected.size());
      for (std::size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(actual[i].to, expected[i].to);
        ASSERT_EQ(actual[i].edge, expected[i].edge);
      }
    }
    for (EdgeId edge = 0; static_cast<std::size_t>(edge) < g.EdgeCount();
         ++edge) {
      ASSERT_EQ(csr.Endpoints(edge), g.Endpoints(edge));
    }
  }
}

TEST(CsrViewTest, FindEdgeMatchesGraph) {
  Rng rng{99};
  for (const auto& [name, g] : TestGraphs()) {
    SCOPED_TRACE(name);
    const CsrView& csr = g.Csr();
    for (int trial = 0; trial < 200; ++trial) {
      const auto u = static_cast<NodeId>(rng.NextUint64(g.NodeCount()));
      const auto v = static_cast<NodeId>(rng.NextUint64(g.NodeCount()));
      if (u == v) continue;
      ASSERT_EQ(csr.FindEdge(u, v), g.FindEdge(u, v));
      ASSERT_EQ(csr.Adjacent(u, v), g.Adjacent(u, v));
    }
    // And exhaustively along actual edges (both argument orders).
    for (EdgeId edge = 0; static_cast<std::size_t>(edge) < g.EdgeCount();
         ++edge) {
      const auto [u, v] = g.Endpoints(edge);
      ASSERT_EQ(csr.FindEdge(u, v), g.FindEdge(u, v));
      ASSERT_EQ(csr.FindEdge(v, u), g.FindEdge(v, u));
    }
  }
}

TEST(CsrEquivalenceTest, BfsDistancesMatchReference) {
  Rng rng{424242};
  for (const auto& [name, g] : TestGraphs()) {
    SCOPED_TRACE(name);
    const FailureSet failures = RandomFailures(g, rng);
    for (int trial = 0; trial < 8; ++trial) {
      const auto src = static_cast<NodeId>(rng.NextUint64(g.NodeCount()));
      ASSERT_EQ(BfsDistances(g, src), ReferenceBfs(g, src, nullptr));
      ASSERT_EQ(BfsDistances(g, src, &failures),
                ReferenceBfs(g, src, &failures));
    }
  }
}

TEST(CsrEquivalenceTest, ShortestPathMatchesFullSweepReference) {
  Rng rng{31337};
  for (const auto& [name, g] : TestGraphs()) {
    SCOPED_TRACE(name);
    const FailureSet failures = RandomFailures(g, rng);
    for (int trial = 0; trial < 24; ++trial) {
      const auto src = static_cast<NodeId>(rng.NextUint64(g.NodeCount()));
      const auto dst = static_cast<NodeId>(rng.NextUint64(g.NodeCount()));
      ASSERT_EQ(ShortestPath(g, src, dst),
                ReferenceShortestPath(g, src, dst, nullptr));
      ASSERT_EQ(ShortestPath(g, src, dst, &failures),
                ReferenceShortestPath(g, src, dst, &failures));
    }
  }
}

TEST(CsrEquivalenceTest, ReachabilityAndConnectivityMatchReference) {
  Rng rng{777};
  for (const auto& [name, g] : TestGraphs()) {
    SCOPED_TRACE(name);
    const FailureSet failures = RandomFailures(g, rng);
    const auto src = static_cast<NodeId>(rng.NextUint64(g.NodeCount()));
    std::size_t expected = 0;
    for (const int dist : ReferenceBfs(g, src, &failures)) {
      if (dist != kUnreachable) ++expected;
    }
    ASSERT_EQ(ReachableCount(g, src, &failures), expected);

    std::size_t live = 0, reached_from_first_live = 0;
    NodeId first_live = kInvalidNode;
    for (NodeId node = 0; static_cast<std::size_t>(node) < g.NodeCount();
         ++node) {
      if (!failures.NodeDead(node)) {
        ++live;
        if (first_live == kInvalidNode) first_live = node;
      }
    }
    if (live > 0) {
      for (const int dist : ReferenceBfs(g, first_live, &failures)) {
        if (dist != kUnreachable) ++reached_from_first_live;
      }
    }
    ASSERT_EQ(IsConnected(g, &failures),
              live == 0 || reached_from_first_live == live);
  }
}

TEST(CsrEquivalenceTest, MinCutsAgreeAcrossAllSolvers) {
  Rng rng{5150};
  for (const auto& [name, g] : TestGraphs()) {
    SCOPED_TRACE(name);
    const CsrView& csr = g.Csr();
    const FailureSet failures = RandomFailures(g, rng);
    FlowScope ws;
    for (int trial = 0; trial < 6; ++trial) {
      const auto src = static_cast<NodeId>(rng.NextUint64(g.NodeCount()));
      const auto dst = static_cast<NodeId>(rng.NextUint64(g.NodeCount()));
      if (src == dst) continue;
      for (const FailureSet* f : {static_cast<const FailureSet*>(nullptr),
                                  &failures}) {
        const std::size_t cut = EdgeConnectivity(g, src, dst, f);
        ASSERT_EQ(EdgeConnectivity(csr, src, dst, *ws, f), cut);
        const auto paths = EdgeDisjointPaths(g, src, dst,
                                             static_cast<std::size_t>(-1), f);
        ASSERT_EQ(paths.size(), cut);
        // The workspace overload must return byte-identical paths.
        ASSERT_EQ(EdgeDisjointPaths(csr, src, dst, *ws,
                                    static_cast<std::size_t>(-1), f),
                  paths);
        // Dinic with unit capacities computes the same cut.
        ASSERT_EQ(MinCutBetween(g, std::vector<NodeId>{src},
                                std::vector<NodeId>{dst}, 1, f),
                  static_cast<std::int64_t>(cut));
        // Each path walks real, live, pairwise-disjoint links src..dst.
        EpochMarks used;
        used.Begin(g.EdgeCount());
        for (const auto& path : paths) {
          ASSERT_EQ(path.front(), src);
          ASSERT_EQ(path.back(), dst);
          for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            EdgeId link = kInvalidEdge;
            for (const HalfEdge& half : g.Neighbors(path[i])) {
              if (half.to != path[i + 1]) continue;
              if (f != nullptr && f->EdgeDead(half.edge)) continue;
              if (used.Marked(half.edge)) continue;
              link = half.edge;
              break;
            }
            ASSERT_NE(link, kInvalidEdge)
                << "path reuses or fabricates a link";
            used.Mark(link);
            if (f != nullptr) {
              ASSERT_FALSE(f->NodeDead(path[i]));
              ASSERT_FALSE(f->NodeDead(path[i + 1]));
            }
          }
        }
      }
    }
  }
}

TEST(CsrCacheTest, InvalidatedByMutationAndStableWithoutIt) {
  Graph g;
  const NodeId a = g.AddNode(NodeKind::kServer);
  const NodeId b = g.AddNode(NodeKind::kServer);
  g.AddEdge(a, b);
  const CsrView* first = &g.Csr();
  // No mutation: same snapshot object.
  ASSERT_EQ(&g.Csr(), first);
  ASSERT_EQ(g.Csr().EdgeCount(), 1u);

  const NodeId c = g.AddNode(NodeKind::kSwitch);
  g.AddEdge(b, c);
  const CsrView& rebuilt = g.Csr();
  ASSERT_EQ(rebuilt.NodeCount(), 3u);
  ASSERT_EQ(rebuilt.EdgeCount(), 2u);
  ASSERT_TRUE(rebuilt.Adjacent(b, c));
}

TEST(CsrCacheTest, CopiesAndMovesKeepGraphAndViewConsistent) {
  Graph original;
  const NodeId a = original.AddNode(NodeKind::kServer);
  const NodeId b = original.AddNode(NodeKind::kServer);
  original.AddEdge(a, b);
  original.Csr();

  // Mutating a copy must not disturb the original's snapshot.
  Graph copy = original;
  copy.AddNode(NodeKind::kSwitch);
  ASSERT_EQ(copy.Csr().NodeCount(), 3u);
  ASSERT_EQ(original.Csr().NodeCount(), 2u);

  Graph moved = std::move(copy);
  ASSERT_EQ(moved.Csr().NodeCount(), 3u);
  ASSERT_TRUE(moved.Csr().Adjacent(a, b));

  Graph assigned;
  assigned = moved;
  ASSERT_EQ(assigned.Csr().NodeCount(), 3u);
}

}  // namespace
}  // namespace dcn::graph
