// MS-BFS-vs-BFS equivalence battery.
//
// The bit-parallel multi-source kernel (graph/msbfs.h) must agree with the
// single-source BfsDistances on every lane: same distances, same reachability,
// for every topology family, random graphs, failure overlays, disconnected
// graphs, and batch sizes straddling the 64-lane word width (1, 63, 64, 65,
// and all nodes). The aggregate sweep (AllPairsDistanceSweep) is pinned to a
// per-source reference accumulation, and determinism is re-checked across
// thread counts.
#include "graph/msbfs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "graph/bfs.h"
#include "topology/abccc.h"
#include "topology/bccc.h"
#include "topology/bcube.h"
#include "topology/dcell.h"
#include "topology/fattree.h"
#include "topology/ficonn.h"
#include "topology/gabccc.h"

namespace dcn::graph {
namespace {

// Random connected plant: spanning tree plus chords, mixed node kinds,
// occasional parallel links (same shape as the CSR battery's).
Graph RandomGraph(Rng& rng) {
  Graph g;
  const std::size_t nodes = static_cast<std::size_t>(rng.NextInt(8, 120));
  for (std::size_t i = 0; i < nodes; ++i) {
    const bool server = i < 2 || rng.NextBernoulli(0.6);
    g.AddNode(server ? NodeKind::kServer : NodeKind::kSwitch);
  }
  for (std::size_t i = 1; i < nodes; ++i) {
    g.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(rng.NextUint64(i)));
  }
  const std::size_t chords = static_cast<std::size_t>(rng.NextInt(0, 20));
  for (std::size_t e = 0; e < chords; ++e) {
    const auto u = static_cast<NodeId>(rng.NextUint64(nodes));
    const auto v = static_cast<NodeId>(rng.NextUint64(nodes));
    if (u != v) g.AddEdge(u, v);
  }
  return g;
}

// Two islands with no edge between them — reachability must stay per-island.
Graph DisconnectedGraph() {
  Graph g;
  for (int i = 0; i < 40; ++i) g.AddNode(NodeKind::kServer);
  for (int i = 1; i < 20; ++i) g.AddEdge(i, i - 1);       // island A: path
  for (int i = 21; i < 40; ++i) g.AddEdge(i, 20 + (i % 3));  // island B
  return g;
}

// Every topology family named by the paper comparison set.
std::vector<std::pair<std::string, Graph>> FamilyGraphs() {
  std::vector<std::pair<std::string, Graph>> graphs;
  graphs.emplace_back("abccc", topo::Abccc{topo::AbcccParams{3, 1, 2}}.Network());
  graphs.emplace_back("bccc", topo::Bccc{3, 1}.Network());
  graphs.emplace_back("bcube", topo::Bcube{3, 1}.Network());
  graphs.emplace_back("dcell", topo::Dcell{3, 1}.Network());
  graphs.emplace_back("ficonn", topo::FiConn{4, 1}.Network());
  graphs.emplace_back("fattree", topo::FatTree{4}.Network());
  graphs.emplace_back(
      "gabccc", topo::GeneralAbccc{topo::GeneralAbcccParams{{3, 4}, 2}}.Network());
  return graphs;
}

FailureSet RandomFailures(const Graph& g, Rng& rng) {
  FailureSet failures{g};
  for (NodeId node = 0; static_cast<std::size_t>(node) < g.NodeCount(); ++node) {
    if (rng.NextBernoulli(0.1)) failures.KillNode(node);
  }
  for (EdgeId edge = 0; static_cast<std::size_t>(edge) < g.EdgeCount(); ++edge) {
    if (rng.NextBernoulli(0.1)) failures.KillEdge(edge);
  }
  return failures;
}

// The contract under test: every row of MultiSourceDistances equals the
// single-source BFS from that row's source.
void ExpectMatchesPerSourceBfs(const Graph& g, std::span<const NodeId> sources,
                               const FailureSet* failures,
                               const std::string& label) {
  const CsrView& csr = g.Csr();
  const std::vector<int> dist = MultiSourceDistances(csr, sources, failures);
  ASSERT_EQ(dist.size(), sources.size() * csr.NodeCount()) << label;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const std::vector<int> expect = BfsDistances(g, sources[i], failures);
    for (std::size_t node = 0; node < csr.NodeCount(); ++node) {
      ASSERT_EQ(dist[i * csr.NodeCount() + node], expect[node])
          << label << " source " << sources[i] << " (lane " << i << ") node "
          << node;
    }
  }
}

// Source pools straddling the 64-lane boundary, clamped to the graph size.
std::vector<std::size_t> BatchSizes(std::size_t nodes) {
  std::vector<std::size_t> sizes;
  for (const std::size_t want : {std::size_t{1}, std::size_t{63},
                                 std::size_t{64}, std::size_t{65}, nodes}) {
    sizes.push_back(std::min(want, nodes));
  }
  std::sort(sizes.begin(), sizes.end());
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
  return sizes;
}

// First `count` node ids, wrapping — includes duplicates once count > nodes
// would wrap, and always includes node 0.
std::vector<NodeId> FirstNodes(std::size_t count, std::size_t nodes) {
  std::vector<NodeId> sources(count);
  for (std::size_t i = 0; i < count; ++i) {
    sources[i] = static_cast<NodeId>(i % nodes);
  }
  return sources;
}

TEST(MsBfsTest, MatchesBfsOnEveryFamilyAtEveryBatchSize) {
  for (const auto& [name, g] : FamilyGraphs()) {
    for (const std::size_t count : BatchSizes(g.NodeCount())) {
      ExpectMatchesPerSourceBfs(g, FirstNodes(count, g.NodeCount()), nullptr,
                                name + "/" + std::to_string(count));
    }
  }
}

TEST(MsBfsTest, MatchesBfsOnRandomGraphs) {
  Rng rng{20260806};
  for (int round = 0; round < 8; ++round) {
    const Graph g = RandomGraph(rng);
    for (const std::size_t count : BatchSizes(g.NodeCount())) {
      ExpectMatchesPerSourceBfs(g, FirstNodes(count, g.NodeCount()), nullptr,
                                "random-" + std::to_string(round));
    }
  }
}

TEST(MsBfsTest, MatchesBfsUnderRandomFailures) {
  Rng rng{20260807};
  auto graphs = FamilyGraphs();
  for (int round = 0; round < 4; ++round) {
    graphs.emplace_back("random-" + std::to_string(round), RandomGraph(rng));
  }
  for (const auto& [name, g] : graphs) {
    const FailureSet failures = RandomFailures(g, rng);
    for (const std::size_t count : BatchSizes(g.NodeCount())) {
      ExpectMatchesPerSourceBfs(g, FirstNodes(count, g.NodeCount()), &failures,
                                name + "/failures");
    }
  }
}

TEST(MsBfsTest, MatchesBfsOnDisconnectedGraph) {
  const Graph g = DisconnectedGraph();
  for (const std::size_t count : BatchSizes(g.NodeCount())) {
    ExpectMatchesPerSourceBfs(g, FirstNodes(count, g.NodeCount()), nullptr,
                              "disconnected");
  }
  // Spot-check the reachability words: island A lanes never see island B.
  MsBfsScope ws;
  const std::vector<NodeId> sources{0, 25};
  MultiSourceBfs(g.Csr(), sources, *ws, [](int, NodeId, std::uint64_t) {});
  EXPECT_EQ(ws->SeenWord(5), 1u);    // island A node: lane 0 only
  EXPECT_EQ(ws->SeenWord(30), 2u);   // island B node: lane 1 only
}

TEST(MsBfsTest, DuplicateAndDeadSourcesShareAndDropLanes) {
  const Graph g = DisconnectedGraph();
  const CsrView& csr = g.Csr();
  // Lanes 0 and 2 are the same source; lane 1 is killed.
  FailureSet failures{g};
  failures.KillNode(7);
  const std::vector<NodeId> sources{3, 7, 3};
  const std::vector<int> dist = MultiSourceDistances(csr, sources, &failures);
  const std::vector<int> expect = BfsDistances(g, 3, &failures);
  for (std::size_t node = 0; node < csr.NodeCount(); ++node) {
    EXPECT_EQ(dist[0 * csr.NodeCount() + node], expect[node]);
    EXPECT_EQ(dist[2 * csr.NodeCount() + node], expect[node]);
    EXPECT_EQ(dist[1 * csr.NodeCount() + node], kUnreachable);
  }
}

TEST(MsBfsTest, VisitReportsEachNodeOnceInLevelOrder) {
  const Graph g = topo::Abccc{topo::AbcccParams{3, 1, 2}}.Network();
  const CsrView& csr = g.Csr();
  const std::vector<NodeId> sources = FirstNodes(17, g.NodeCount());
  MsBfsScope ws;
  int last_level = -1;
  NodeId last_node = -1;
  std::vector<std::uint64_t> seen(csr.NodeCount(), 0);
  MultiSourceBfs(csr, sources, *ws,
                 [&](int level, NodeId node, std::uint64_t bits) {
                   ASSERT_NE(bits, 0u);
                   ASSERT_GE(level, last_level);
                   if (level == last_level) {
                     ASSERT_GT(node, last_node);  // ascending ids in a level
                   }
                   last_level = level;
                   last_node = node;
                   ASSERT_EQ(seen[static_cast<std::size_t>(node)] & bits, 0u)
                       << "lane re-settled";
                   seen[static_cast<std::size_t>(node)] |= bits;
                 });
  for (NodeId node = 0; static_cast<std::size_t>(node) < csr.NodeCount();
       ++node) {
    EXPECT_EQ(seen[static_cast<std::size_t>(node)], ws->SeenWord(node));
  }
}

TEST(MsBfsTest, ServerEccentricitiesMatchPerSourceMax) {
  Rng rng{20260808};
  auto graphs = FamilyGraphs();
  graphs.emplace_back("disconnected", DisconnectedGraph());
  graphs.emplace_back("random", RandomGraph(rng));
  for (const auto& [name, g] : graphs) {
    const CsrView& csr = g.Csr();
    const std::vector<NodeId> sources = FirstNodes(
        std::min<std::size_t>(65, g.NodeCount()), g.NodeCount());
    const std::vector<int> ecc = ServerEccentricities(csr, sources);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      const std::vector<int> dist = BfsDistances(g, sources[i]);
      int expect = kUnreachable;
      for (const NodeId server : g.Servers()) {
        expect = std::max(expect, dist[static_cast<std::size_t>(server)]);
      }
      ASSERT_EQ(ecc[i], expect) << name << " source " << sources[i];
    }
  }
}

// Reference accumulation for the aggregate sweep: the per-source loops the
// MS-BFS version replaced.
AllPairsSweepStats ReferenceSweep(const Graph& g) {
  AllPairsSweepStats ref;
  const auto servers = g.Servers();
  ref.radius = std::numeric_limits<int>::max();
  for (const NodeId src : servers) {
    const std::vector<int> dist = BfsDistances(g, src);
    int ecc = 0;
    std::size_t reached = 0;
    for (const NodeId dst : servers) {
      const int d = dist[static_cast<std::size_t>(dst)];
      if (d == kUnreachable) continue;
      ++reached;
      if (dst == src) continue;
      ref.distance_total += d;
      ++ref.pairs;
      ecc = std::max(ecc, d);
      if (ref.pairs_at_distance.size() <= static_cast<std::size_t>(d)) {
        ref.pairs_at_distance.resize(static_cast<std::size_t>(d) + 1, 0);
      }
      ++ref.pairs_at_distance[static_cast<std::size_t>(d)];
    }
    ref.diameter = std::max(ref.diameter, ecc);
    ref.radius = std::min(ref.radius, ecc);
    if (reached != servers.size()) ref.connected = false;
  }
  if (servers.empty()) ref.radius = 0;
  return ref;
}

TEST(MsBfsTest, AllPairsSweepMatchesReference) {
  Rng rng{20260809};
  auto graphs = FamilyGraphs();
  graphs.emplace_back("disconnected", DisconnectedGraph());
  for (int round = 0; round < 4; ++round) {
    graphs.emplace_back("random-" + std::to_string(round), RandomGraph(rng));
  }
  for (const auto& [name, g] : graphs) {
    const AllPairsSweepStats got = AllPairsDistanceSweep(g.Csr());
    const AllPairsSweepStats ref = ReferenceSweep(g);
    EXPECT_EQ(got.distance_total, ref.distance_total) << name;
    EXPECT_EQ(got.pairs, ref.pairs) << name;
    EXPECT_EQ(got.diameter, ref.diameter) << name;
    EXPECT_EQ(got.radius, ref.radius) << name;
    EXPECT_EQ(got.connected, ref.connected) << name;
    // The histogram may carry trailing/leading zero buckets; compare padded.
    auto padded = [](std::vector<std::uint64_t> h, std::size_t n) {
      h.resize(std::max(h.size(), n), 0);
      return h;
    };
    const std::size_t buckets =
        std::max(got.pairs_at_distance.size(), ref.pairs_at_distance.size());
    EXPECT_EQ(padded(got.pairs_at_distance, buckets),
              padded(ref.pairs_at_distance, buckets))
        << name;
  }
}

TEST(MsBfsTest, AllPairsSweepIsThreadCountInvariant) {
  const Graph g = topo::Abccc{topo::AbcccParams{3, 2, 2}}.Network();
  SetThreadCount(1);
  const AllPairsSweepStats serial = AllPairsDistanceSweep(g.Csr());
  for (const int threads : {2, 7}) {
    SetThreadCount(threads);
    const AllPairsSweepStats parallel = AllPairsDistanceSweep(g.Csr());
    EXPECT_EQ(serial.distance_total, parallel.distance_total)
        << "threads=" << threads;
    EXPECT_EQ(serial.pairs, parallel.pairs) << "threads=" << threads;
    EXPECT_EQ(serial.diameter, parallel.diameter) << "threads=" << threads;
    EXPECT_EQ(serial.radius, parallel.radius) << "threads=" << threads;
    EXPECT_EQ(serial.pairs_at_distance, parallel.pairs_at_distance)
        << "threads=" << threads;
  }
  SetThreadCount(0);
}

// A reused workspace must not leak lanes between batches of very different
// sizes (the freelist keeps buffers warm across blocks).
TEST(MsBfsTest, WorkspaceReuseAcrossSizesStaysClean) {
  const Graph small = RandomGraph(*std::make_unique<Rng>(5).get());
  Rng rng{6};
  const Graph large = RandomGraph(rng);
  MsBfsScope ws;
  for (int round = 0; round < 50; ++round) {
    const Graph& g = (round % 2 == 0) ? small : large;
    const std::size_t lanes = 1 + (static_cast<std::size_t>(round) % 64);
    const std::vector<NodeId> sources = FirstNodes(lanes, g.NodeCount());
    std::vector<int> dist(g.NodeCount(), kUnreachable);
    MultiSourceBfs(g.Csr(), sources, *ws,
                   [&](int level, NodeId node, std::uint64_t bits) {
                     if (bits & 1) dist[static_cast<std::size_t>(node)] = level;
                   });
    const std::vector<int> expect = BfsDistances(g, sources[0]);
    ASSERT_EQ(dist, expect) << "round " << round;
  }
}

}  // namespace
}  // namespace dcn::graph
