#include "routing/load_balance.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "routing/abccc_routing.h"
#include "routing/multipath.h"
#include "sim/flowsim.h"
#include "sim/traffic.h"
#include "topology/abccc.h"

namespace dcn::routing {
namespace {

using graph::Graph;
using graph::NodeKind;
using topo::Abccc;
using topo::AbcccParams;

// Two parallel relay paths 0 -> {1|2} -> 3 (all servers so they can relay).
Graph MakeDiamond() {
  Graph g;
  for (int i = 0; i < 4; ++i) g.AddNode(NodeKind::kServer);
  g.AddEdge(0, 1);
  g.AddEdge(1, 3);
  g.AddEdge(0, 2);
  g.AddEdge(2, 3);
  return g;
}

TEST(LoadBalanceTest, SpreadsTwoFlowsAcrossTheDiamond) {
  const Graph g = MakeDiamond();
  const std::vector<Route> candidates{Route{{0, 1, 3}}, Route{{0, 2, 3}}};
  const LoadBalanceResult result =
      AssignRoutes(g, {candidates, candidates});
  EXPECT_NE(result.chosen[0], result.chosen[1]);
  EXPECT_EQ(result.max_link_load, 1u);
}

TEST(LoadBalanceTest, SingleCandidateIsForced) {
  const Graph g = MakeDiamond();
  const std::vector<Route> only{Route{{0, 1, 3}}};
  const LoadBalanceResult result = AssignRoutes(g, {only, only, only});
  EXPECT_EQ(result.max_link_load, 3u);
  for (std::size_t pick : result.chosen) EXPECT_EQ(pick, 0u);
}

TEST(LoadBalanceTest, TieBreaksPreferShorterRoutes) {
  Graph g;
  for (int i = 0; i < 5; ++i) g.AddNode(NodeKind::kServer);
  g.AddEdge(0, 1);          // short path 0-1
  g.AddEdge(0, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 1);          // long path 0-2-3-1
  const std::vector<Route> candidates{Route{{0, 2, 3, 1}}, Route{{0, 1}}};
  const LoadBalanceResult result = AssignRoutes(g, {candidates});
  EXPECT_EQ(result.chosen[0], 1u);
}

TEST(LoadBalanceTest, RefinementImprovesOnGreedyOrderArtifacts) {
  // Greedy in input order can leave an avoidable hotspot; a refinement pass
  // must never make max load worse.
  const Graph g = MakeDiamond();
  const std::vector<Route> candidates{Route{{0, 1, 3}}, Route{{0, 2, 3}}};
  std::vector<std::vector<Route>> flows(6, candidates);
  LoadBalanceOptions no_refine;
  no_refine.refinement_passes = 0;
  const LoadBalanceResult greedy = AssignRoutes(g, flows, no_refine);
  const LoadBalanceResult refined = AssignRoutes(g, flows);
  EXPECT_LE(refined.max_link_load, greedy.max_link_load);
  EXPECT_EQ(refined.max_link_load, 3u);  // 6 flows over 2 paths
}

TEST(LoadBalanceTest, PreconditionsChecked) {
  const Graph g = MakeDiamond();
  EXPECT_THROW(AssignRoutes(g, {{}}), dcn::InvalidArgument);
  LoadBalanceOptions bad;
  bad.refinement_passes = -1;
  EXPECT_THROW(AssignRoutes(g, {{Route{{0, 1, 3}}}}, bad), dcn::InvalidArgument);
}

TEST(LoadBalanceTest, ProfilesFixedRouteSets) {
  const Graph g = MakeDiamond();
  const auto [max_load, mean_load] = LinkLoadProfile(
      g, {Route{{0, 1, 3}}, Route{{0, 1, 3}}, Route{{0, 2, 3}}});
  EXPECT_EQ(max_load, 2u);
  EXPECT_GT(mean_load, 1.0);
  const auto [empty_max, empty_mean] = LinkLoadProfile(g, {Route{}});
  EXPECT_EQ(empty_max, 0u);
  EXPECT_EQ(empty_mean, 0.0);
}

// End-to-end property on a real network: balancing over the rotated
// candidate routes never lowers — and typically raises — permutation ABT
// relative to everyone using the single default route.
TEST(LoadBalanceTest, RaisesPermutationThroughputOnAbccc) {
  const Abccc net{AbcccParams{4, 2, 2}};
  dcn::Rng rng{81};
  const std::vector<sim::Flow> flows = sim::PermutationTraffic(net, rng);

  std::vector<Route> single;
  std::vector<std::vector<Route>> candidates;
  for (const sim::Flow& flow : flows) {
    single.push_back(AbcccRoute(net, flow.src, flow.dst));
    candidates.push_back(RotatedLevelOrderRoutes(net, flow.src, flow.dst));
  }
  const LoadBalanceResult balanced = AssignRoutes(net.Network(), candidates);

  const auto [single_max, single_mean] = LinkLoadProfile(net.Network(), single);
  EXPECT_LE(balanced.max_link_load, single_max);

  const sim::FlowSimResult base = sim::MaxMinFairRates(net.Network(), single);
  const sim::FlowSimResult spread =
      sim::MaxMinFairRates(net.Network(), balanced.routes);
  EXPECT_GE(spread.abt, base.abt * 0.99);  // never meaningfully worse
}

}  // namespace
}  // namespace dcn::routing
