#include "common/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "common/error.h"

namespace dcn {
namespace {

// Restores the ambient thread configuration after each test so the suites
// stay order-independent.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetThreadCount(0);
    unsetenv("DCN_THREADS");
  }
};

TEST_F(ParallelTest, EmptyRangeNeverInvokes) {
  SetThreadCount(4);
  std::atomic<int> calls{0};
  ParallelFor(0, 8, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  const int reduced = ParallelMapReduce(
      0, 8, 42, [](std::size_t, std::size_t) { return 0; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(reduced, 42);  // init passes through untouched
}

TEST_F(ParallelTest, RangeSmallerThanChunkIsOneChunk) {
  SetThreadCount(4);
  std::atomic<int> calls{0};
  std::vector<int> seen(3, 0);
  ParallelFor(3, 100, [&](std::size_t begin, std::size_t end) {
    ++calls;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 3u);
    for (std::size_t i = begin; i < end; ++i) seen[i] = 1;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(std::accumulate(seen.begin(), seen.end(), 0), 3);
}

TEST_F(ParallelTest, EveryIndexCoveredExactlyOnce) {
  SetThreadCount(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(kN, 7, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_F(ParallelTest, ZeroChunkSizeThrows) {
  EXPECT_THROW(ParallelFor(10, 0, [](std::size_t, std::size_t) {}),
               InvalidArgument);
}

TEST_F(ParallelTest, ExceptionsPropagateSerialAndParallel) {
  for (int threads : {1, 4}) {
    SetThreadCount(threads);
    EXPECT_THROW(
        ParallelFor(100, 1,
                    [](std::size_t begin, std::size_t) {
                      if (begin == 37) throw std::runtime_error{"chunk failed"};
                    }),
        std::runtime_error)
        << "threads=" << threads;
    // The pool survives a failed region and runs the next one.
    std::atomic<int> calls{0};
    ParallelFor(10, 1, [&](std::size_t, std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 10);
  }
}

TEST_F(ParallelTest, NestedParallelForRunsInlineAndIsSafe) {
  SetThreadCount(4);
  EXPECT_FALSE(InParallelRegion());
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(8, 1, [&](std::size_t outer, std::size_t) {
    EXPECT_TRUE(InParallelRegion());
    // Inner region must not deadlock on the same pool; it runs serially.
    ParallelFor(8, 1, [&](std::size_t inner, std::size_t) {
      ++hits[outer * 8 + inner];
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "slot " << i;
  }
  EXPECT_FALSE(InParallelRegion());
}

TEST_F(ParallelTest, SingleThreadBypassesPoolAndRunsInOrder) {
  SetThreadCount(1);
  // With one thread the chunks must execute ascending on the calling thread.
  std::vector<std::size_t> order;
  const auto caller = std::this_thread::get_id();
  ParallelFor(20, 3, [&](std::size_t begin, std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(begin);  // no synchronization needed: single thread
  });
  ASSERT_EQ(order.size(), 7u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST_F(ParallelTest, EnvVariableControlsAutomaticCount) {
  SetThreadCount(0);
  setenv("DCN_THREADS", "3", 1);
  EXPECT_EQ(ThreadCount(), 3);
  // An explicit override beats the environment.
  SetThreadCount(5);
  EXPECT_EQ(ThreadCount(), 5);
  SetThreadCount(0);
  EXPECT_EQ(ThreadCount(), 3);
  setenv("DCN_THREADS", "zero", 1);
  EXPECT_THROW(ThreadCount(), InvalidArgument);
  setenv("DCN_THREADS", "0", 1);
  EXPECT_THROW(ThreadCount(), InvalidArgument);
}

TEST_F(ParallelTest, ConfigureThreadsReadsCliFlag) {
  const char* argv[] = {"prog", "--threads=2"};
  ConfigureThreads(CliArgs{2, argv});
  EXPECT_EQ(ThreadCount(), 2);
  const char* reset[] = {"prog", "--threads=0"};
  setenv("DCN_THREADS", "7", 1);
  ConfigureThreads(CliArgs{2, reset});
  EXPECT_EQ(ThreadCount(), 7);  // 0 = automatic, falls back to the env var
  const char* bad[] = {"prog", "--threads=-1"};
  EXPECT_THROW(ConfigureThreads(CliArgs{2, bad}), InvalidArgument);
}

TEST_F(ParallelTest, SetThreadCountRejectedInsideRegion) {
  SetThreadCount(2);
  EXPECT_THROW(
      ParallelFor(4, 1, [](std::size_t, std::size_t) { SetThreadCount(3); }),
      InvalidArgument);
}

TEST_F(ParallelTest, MapReduceMergesPartialsInChunkOrder) {
  // Each chunk maps to its own index; the fold must observe chunks ascending
  // regardless of which thread finished first — that order is what makes
  // floating-point reductions reproducible.
  for (int threads : {1, 2, 7}) {
    SetThreadCount(threads);
    const std::vector<std::size_t> order = ParallelMapReduce(
        100, 9, std::vector<std::size_t>{},
        [](std::size_t begin, std::size_t) { return begin / 9; },
        [](std::vector<std::size_t> acc, std::size_t chunk) {
          acc.push_back(chunk);
          return acc;
        });
    ASSERT_EQ(order.size(), 12u) << "threads=" << threads;
    for (std::size_t c = 0; c < order.size(); ++c) {
      ASSERT_EQ(order[c], c) << "threads=" << threads;
    }
  }
}

TEST_F(ParallelTest, TeamSizeMatchesThreadCountAndNestsToOne) {
  SetThreadCount(5);
  EXPECT_EQ(TeamSize(), 5);
  ParallelFor(1, 1, [](std::size_t, std::size_t) {
    EXPECT_EQ(TeamSize(), 1);  // nested: members would share one thread
  });
  SetThreadCount(1);
  EXPECT_EQ(TeamSize(), 1);
}

TEST_F(ParallelTest, RunTeamGivesEveryMemberItsOwnThreadInLockstep) {
  for (int threads : {1, 3, 7}) {
    SetThreadCount(threads);
    const int team = TeamSize();
    ASSERT_EQ(team, threads);
    // Phase 1: every member records its slot; phase 2 (barrier-separated):
    // every member checks it can read all the other members' phase-1 writes.
    std::vector<int> slots(static_cast<std::size_t>(team), -1);
    std::atomic<int> failures{0};
    RunTeam(team, [&](int me, SpinBarrier& barrier) {
      EXPECT_EQ(barrier.Parties(), team);
      slots[static_cast<std::size_t>(me)] = me;
      barrier.Arrive();
      for (int k = 0; k < team; ++k) {
        if (slots[static_cast<std::size_t>(k)] != k) ++failures;
      }
      barrier.Arrive();
    });
    EXPECT_EQ(failures.load(), 0) << "threads=" << threads;
  }
}

TEST_F(ParallelTest, RunTeamBarrierPhasesAlternateWithoutLoss) {
  // Many rounds of write-barrier-read: catches a barrier that lets a fast
  // member lap a slow one (sense reversal) or drops a wakeup when the team
  // is oversubscribed on few cores.
  SetThreadCount(4);
  const int team = TeamSize();
  constexpr int kRounds = 200;
  std::vector<std::uint64_t> counters(static_cast<std::size_t>(team), 0);
  std::atomic<int> failures{0};
  RunTeam(team, [&](int me, SpinBarrier& barrier) {
    for (int round = 0; round < kRounds; ++round) {
      ++counters[static_cast<std::size_t>(me)];
      barrier.Arrive();
      for (int k = 0; k < team; ++k) {
        if (counters[static_cast<std::size_t>(k)] !=
            static_cast<std::uint64_t>(round + 1)) {
          ++failures;
        }
      }
      barrier.Arrive();
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ParallelTest, RunTeamMemberFailureAbortsTheWholeTeam) {
  SetThreadCount(4);
  const int team = TeamSize();
  ASSERT_GE(team, 2);
  // Member 2 throws before the barrier; the rest must unwind via the abort
  // instead of deadlocking in Arrive, and the pool must survive.
  EXPECT_THROW(RunTeam(team,
                       [&](int me, SpinBarrier& barrier) {
                         if (me == 2) throw std::runtime_error{"member failed"};
                         barrier.Arrive();
                       }),
               std::exception);
  std::atomic<int> calls{0};
  RunTeam(team, [&](int, SpinBarrier& barrier) {
    ++calls;
    barrier.Arrive();
  });
  EXPECT_EQ(calls.load(), team);
}

TEST_F(ParallelTest, RunTeamRejectsOversizedTeams) {
  SetThreadCount(2);
  EXPECT_THROW(RunTeam(3, [](int, SpinBarrier&) {}), InvalidArgument);
}

TEST_F(ParallelTest, MapReduceComputesTheSameSumForAnyThreadCount) {
  constexpr std::size_t kN = 10000;
  auto sum_squares = [] {
    return ParallelMapReduce(
        kN, 13, std::uint64_t{0},
        [](std::size_t begin, std::size_t end) {
          std::uint64_t s = 0;
          for (std::size_t i = begin; i < end; ++i) s += i * i;
          return s;
        },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
  };
  SetThreadCount(1);
  const std::uint64_t serial = sum_squares();
  EXPECT_EQ(serial, (kN - 1) * kN * (2 * kN - 1) / 6);
  for (int threads : {2, 4, 7}) {
    SetThreadCount(threads);
    EXPECT_EQ(sum_squares(), serial) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace dcn
