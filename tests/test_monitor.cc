// Lockdown of the online health monitor (obs/monitor.h), the mid-run fault
// schedule (sim/failures.h), and their wiring into the simulators:
//
//  * detector math against hand-computed Q16.16 EWMA/CUSUM references;
//  * hysteresis: flapping signals stay suspect and never alert;
//  * monitor-on, fault-free packet runs are byte-identical to plain runs at
//    every thread count (observation does not perturb);
//  * the acceptance scenario: a faulted ABCCC(4,3,2) run whose alert log is
//    bit-identical at DCN_THREADS 1/2/4/8, with every scheduled fault
//    detected and zero false alarms on the fault-free control;
//  * broadcast and fluid fault semantics, MatchDetections pairing, and the
//    alerts JSON / stats block / Chrome-trace instant-event exports.
#include "obs/monitor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "routing/broadcast.h"
#include "routing/route.h"
#include "sim/failures.h"
#include "sim/fluid.h"
#include "sim/broadcast_sim.h"
#include "sim/packetsim.h"
#include "sim/traffic.h"
#include "topology/abccc.h"

namespace dcn::obs::monitor {
namespace {

using graph::Graph;
using graph::NodeKind;
using routing::Route;

constexpr std::int64_t kOne = std::int64_t{1} << 16;  // 1.0 in Q16.16

class MonitorTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::Reset(); }
  void TearDown() override {
    obs::Reset();
    SetThreadCount(0);
    unsetenv("DCN_THREADS");
  }
};

// One (signal, entity) step helper: values[signal][entity].
std::vector<std::vector<std::int64_t>> Row(std::int64_t v) {
  return {{v}};
}

TEST_F(MonitorTest, SpikeDetectorMatchesHandComputedReference) {
  // drift 8 raw/window (no percent term), threshold fixed at the floor 8,
  // CUSUM clamped at 4*8 = 32. Warmup 2 windows on zeros keeps baseline 0,
  // so every Q16 quantity below is exact.
  MonitorConfig config;
  config.enabled = true;
  config.window_width = 10.0;
  config.ewma_shift = 1;
  config.warmup_windows = 2;
  config.drift_percent = 0;
  config.drift_floor = 8;
  config.threshold_percent = 100;
  config.threshold_floor = 8;
  config.alarm_windows = 2;
  config.clear_windows = 2;
  HealthMonitor mon{config};
  const std::uint32_t entity = mon.AddEntity(EntityKind::kLink, 7);
  mon.AddSignal("drops", SignalDirection::kSpike);
  mon.Seal(10);

  // Windows:      0  1    2    3   4  5  6  7  8  9
  // Values:       0  0  100  100   0  0  0  0  0  0
  // CUSUM (raw):  -  -   32   32  24 16  8  0  0  0   (clamped at 32)
  // Breached:     -  -    y    y   y  y  n  n  n  n   (8 > 8 is false)
  // State:        h  h    s  FIRE  a  a  a CLEAR h h
  for (const std::int64_t v : {0, 0, 100, 100, 0, 0, 0, 0, 0, 0}) {
    mon.StepWindow(Row(v));
  }
  const MonitorResult result = mon.TakeResult();
  ASSERT_EQ(result.alerts.size(), 2u);

  const Alert& fire = result.alerts[0];
  EXPECT_EQ(fire.kind, AlertKind::kFire);
  EXPECT_EQ(fire.entity, entity);
  EXPECT_EQ(fire.signal, 0);
  EXPECT_EQ(fire.window, 3);
  EXPECT_EQ(fire.time, 40.0);  // (window + 1) * width
  EXPECT_EQ(fire.value, 100);
  EXPECT_EQ(fire.baseline_q, 0);  // frozen at the pre-outage baseline
  EXPECT_EQ(fire.cusum_q, 32 * kOne);

  const Alert& clear = result.alerts[1];
  EXPECT_EQ(clear.kind, AlertKind::kClear);
  EXPECT_EQ(clear.entity, entity);
  EXPECT_EQ(clear.window, 7);
  EXPECT_EQ(clear.time, 80.0);
  EXPECT_EQ(clear.value, 0);
  EXPECT_EQ(clear.cusum_q, 0);

  // Breached windows 2..5 for the single entity.
  EXPECT_EQ(result.breach_windows, 4u);
  EXPECT_EQ(result.entities[entity].key, 7);
}

TEST_F(MonitorTest, DropDetectorTracksEwmaBaselineExactly) {
  // Default detector on a throughput collapse: steady 40/window, then 0.
  // The un-breached windows keep training the EWMA (gain 1/8), so the
  // baseline decays 40 -> 35 -> 30.625 before the CUSUM crosses; all values
  // below are exact in Q16 (40 * 25 % and the >>3 steps have no remainder
  // the test doesn't reproduce).
  MonitorConfig config;
  config.enabled = true;
  config.window_width = 1.0;
  HealthMonitor mon{config};
  mon.AddEntity(EntityKind::kLink, 0);
  mon.AddSignal("tx", SignalDirection::kDrop);
  mon.Seal(12);
  for (const std::int64_t v : {40, 40, 40, 40, 40, 40, 40, 40, 0, 0, 0, 0}) {
    mon.StepWindow(Row(v));
  }
  const MonitorResult result = mon.TakeResult();
  ASSERT_EQ(result.alerts.size(), 1u);
  const Alert& fire = result.alerts[0];
  EXPECT_EQ(fire.kind, AlertKind::kFire);
  // w8: cusum 29, baseline -> 35; w9: cusum 54.25, baseline -> 30.625;
  // w10: cusum 76.21875 > thr 61.25 (breach 1); w11: breach 2 -> FIRE.
  EXPECT_EQ(fire.window, 11);
  EXPECT_EQ(fire.value, 0);
  EXPECT_EQ(fire.baseline_q, 2007040);  // 30.625 * 2^16
  EXPECT_EQ(fire.cusum_q, 6434816);     // 98.1875 * 2^16
}

TEST_F(MonitorTest, FlappingSignalStaysSuspectAndNeverAlerts) {
  // One bad window, one good window, repeated: the drift term resets the
  // CUSUM every calm window, so the entity oscillates healthy <-> suspect
  // below the alarm_windows bar. Breaches are counted; alerts are not.
  MonitorConfig config;
  config.enabled = true;
  config.warmup_windows = 2;
  config.ewma_shift = 4;
  config.drift_percent = 0;
  config.drift_floor = 50;
  config.threshold_percent = 100;
  config.threshold_floor = 8;
  config.alarm_windows = 2;
  HealthMonitor mon{config};
  mon.AddEntity(EntityKind::kLink, 0);
  mon.AddSignal("drops", SignalDirection::kSpike);
  mon.Seal(12);
  mon.StepWindow(Row(0));
  mon.StepWindow(Row(0));
  for (int i = 0; i < 5; ++i) {
    mon.StepWindow(Row(100));  // clamp(100 - 50) = 32 > 8: breached
    mon.StepWindow(Row(0));    // clamp(32 - 50) = 0: calm again
  }
  const MonitorResult result = mon.TakeResult();
  EXPECT_TRUE(result.alerts.empty());
  EXPECT_EQ(result.breach_windows, 5u);
}

// ---------------------------------------------------------------------------
// Simulator wiring.

void ExpectSameMonitor(const MonitorResult& a, const MonitorResult& b) {
  ASSERT_EQ(a.enabled, b.enabled);
  EXPECT_EQ(a.windows, b.windows);
  EXPECT_EQ(a.breach_windows, b.breach_windows);
  ASSERT_EQ(a.alerts.size(), b.alerts.size());
  for (std::size_t i = 0; i < a.alerts.size(); ++i) {
    const Alert& x = a.alerts[i];
    const Alert& y = b.alerts[i];
    EXPECT_EQ(x.entity, y.entity) << i;
    EXPECT_EQ(x.kind, y.kind) << i;
    EXPECT_EQ(x.signal, y.signal) << i;
    EXPECT_EQ(x.window, y.window) << i;
    EXPECT_EQ(x.time, y.time) << i;
    EXPECT_EQ(x.value, y.value) << i;
    EXPECT_EQ(x.baseline_q, y.baseline_q) << i;
    EXPECT_EQ(x.cusum_q, y.cusum_q) << i;
  }
  EXPECT_EQ(a.delivered_per_window, b.delivered_per_window);
  EXPECT_EQ(a.latency_sum_per_window, b.latency_sum_per_window);
  EXPECT_EQ(a.dropped_per_window, b.dropped_per_window);
}

std::vector<Route> PermutationRoutes(const topo::Topology& net,
                                     std::uint64_t seed) {
  Rng rng{seed};
  return sim::NativeRoutes(net, sim::PermutationTraffic(net, rng));
}

TEST_F(MonitorTest, MonitorOnFaultFreeRunDoesNotPerturbThePacketSim) {
  const topo::Abccc net{topo::AbcccParams{4, 2, 2}};
  const std::vector<Route> routes = PermutationRoutes(net, 0x2401);
  sim::PacketSimConfig plain;
  plain.offered_load = 0.6;
  plain.duration = 200;
  plain.warmup = 40;
  sim::PacketSimConfig monitored = plain;
  monitored.monitor.enabled = true;
  monitored.monitor.window_width = 20.0;

  SetThreadCount(1);
  const sim::PacketSimResult dark =
      sim::RunPacketSimSerial(net.Network(), routes, plain);
  const sim::PacketSimResult lit =
      sim::RunPacketSimSerial(net.Network(), routes, monitored);
  EXPECT_EQ(lit.generated, dark.generated);
  EXPECT_EQ(lit.delivered, dark.delivered);
  EXPECT_EQ(lit.dropped, dark.dropped);
  EXPECT_EQ(lit.latency.Mean(), dark.latency.Mean());
  EXPECT_EQ(lit.max_queue_depth, dark.max_queue_depth);
  EXPECT_TRUE(lit.monitor.enabled);
  EXPECT_FALSE(dark.monitor.enabled);
  // The recovery curve covers [0, duration); deliveries from the drain tail
  // past the window grid are counted in `delivered` but not bucketed.
  std::uint64_t delivered_windows = 0;
  for (const std::uint32_t d : lit.monitor.delivered_per_window) {
    delivered_windows += d;
  }
  EXPECT_GT(delivered_windows, 0u);
  EXPECT_LE(delivered_windows, lit.delivered);

  for (const int threads : {1, 3}) {
    SCOPED_TRACE(threads);
    SetThreadCount(threads);
    const sim::PacketSimResult sharded =
        sim::RunPacketSim(net.Network(), routes, monitored);
    EXPECT_EQ(sharded.delivered, dark.delivered);
    EXPECT_EQ(sharded.dropped, dark.dropped);
    ExpectSameMonitor(sharded.monitor, lit.monitor);
  }
}

// The acceptance scenario: ABCCC(4, 3, 2) under permutation traffic with a
// degrade, a link kill, and a switch kill mid-run.
struct AcceptanceSetup {
  topo::Abccc net{topo::AbcccParams{4, 3, 2}};
  std::vector<Route> routes;
  sim::FaultSchedule schedule;
  sim::PacketSimConfig config;

  AcceptanceSetup() {
    routes = PermutationRoutes(net, 0x2402);
    const Graph& g = net.Network();
    std::vector<std::uint32_t> link_flows(2 * g.EdgeCount(), 0);
    for (const Route& route : routes) {
      for (const std::uint64_t link : routing::RouteDirectedLinks(g, route)) {
        ++link_flows[link];
      }
    }
    const auto flows_on = [&](graph::EdgeId e) {
      return std::max(link_flows[2 * e], link_flows[2 * e + 1]);
    };
    graph::EdgeId kill_edge = 0;
    const auto edges = static_cast<graph::EdgeId>(g.EdgeCount());
    for (graph::EdgeId e = 1; e < edges; ++e) {
      if (flows_on(e) > flows_on(kill_edge)) kill_edge = e;
    }
    const auto [ku, kv] = g.Endpoints(kill_edge);
    // Busiest transmitting switch away from the killed edge.
    std::vector<std::uint64_t> node_tx(g.NodeCount(), 0);
    for (std::uint64_t link = 0; link < link_flows.size(); ++link) {
      const auto [u, v] = g.Endpoints(static_cast<graph::EdgeId>(link / 2));
      node_tx[link % 2 == 0 ? u : v] += link_flows[link];
    }
    graph::NodeId kill_switch = graph::kInvalidNode;
    for (graph::NodeId n = 0;
         n < static_cast<graph::NodeId>(g.NodeCount()); ++n) {
      if (!g.IsSwitch(n) || n == ku || n == kv) continue;
      if (kill_switch == graph::kInvalidNode ||
          node_tx[n] > node_tx[kill_switch]) {
        kill_switch = n;
      }
    }
    // Busiest edge disjoint from both kill targets takes the degrade: at a
    // stable load only a well-shared link turns a buffer shrink to capacity
    // 1 into a steady burst-drop signal the detector can integrate.
    graph::EdgeId degrade_edge = graph::kInvalidEdge;
    for (graph::EdgeId e = 0; e < edges; ++e) {
      const auto [u, v] = g.Endpoints(e);
      if (e == kill_edge || u == ku || u == kv || v == ku || v == kv ||
          u == kill_switch || v == kill_switch || flows_on(e) == 0) {
        continue;
      }
      if (degrade_edge == graph::kInvalidEdge ||
          flows_on(e) > flows_on(degrade_edge)) {
        degrade_edge = e;
      }
    }
    schedule.DegradeLink(120.0, degrade_edge, 1)
        .KillLink(160.0, kill_edge)
        .KillNode(200.0, kill_switch);
    // A stable operating point: at this load and buffer depth the fault-free
    // network drops nothing, so the control run is a true zero-alarm
    // baseline (saturated networks drop steadily and legitimately alarm).
    config.offered_load = 0.15;
    config.duration = 360;
    config.warmup = 60;
    config.queue_capacity = 64;
    config.monitor.enabled = true;
    config.monitor.window_width = 20.0;
  }
};

TEST_F(MonitorTest, FaultedAbcccAlertLogIsThreadInvariantAndComplete) {
  AcceptanceSetup s;

  // Fault-free control at the same seed and load: zero alarms.
  SetThreadCount(1);
  const sim::PacketSimResult control =
      sim::RunPacketSimSerial(s.net.Network(), s.routes, s.config);
  EXPECT_EQ(control.monitor.FireCount(), 0u);

  sim::PacketSimConfig faulted = s.config;
  faulted.faults = s.schedule;
  const sim::PacketSimResult serial =
      sim::RunPacketSimSerial(s.net.Network(), s.routes, faulted);
  EXPECT_GE(serial.monitor.FireCount(), 3u);
  EXPECT_GT(serial.dropped, control.dropped);

  // Every scheduled fault detected, with a finite positive TTD.
  const std::vector<sim::DetectionOutcome> outcomes =
      sim::MatchDetections(s.net.Network(), s.schedule, serial.monitor);
  ASSERT_EQ(outcomes.size(), 3u);
  for (const sim::DetectionOutcome& o : outcomes) {
    EXPECT_TRUE(o.detected);
    EXPECT_GT(o.ttd, 0.0);
    EXPECT_LE(o.detect_time, faulted.duration);
  }

  // Alert log bit-identical at every thread count.
  for (const int threads : {1, 2, 3, 4, 7, 8}) {
    SCOPED_TRACE(threads);
    SetThreadCount(threads);
    const sim::PacketSimResult sharded =
        sim::RunPacketSim(s.net.Network(), s.routes, faulted);
    EXPECT_EQ(sharded.delivered, serial.delivered);
    EXPECT_EQ(sharded.dropped, serial.dropped);
    ExpectSameMonitor(sharded.monitor, serial.monitor);
  }
}

TEST_F(MonitorTest, EmptyScheduleFaultedConfigIsByteIdenticalToPlain) {
  const topo::Abccc net{topo::AbcccParams{4, 1, 2}};
  const std::vector<Route> routes = PermutationRoutes(net, 0x2403);
  sim::PacketSimConfig config;
  config.offered_load = 0.7;
  config.duration = 150;
  config.warmup = 30;
  SetThreadCount(1);
  const sim::PacketSimResult plain =
      sim::RunPacketSimSerial(net.Network(), routes, config);
  sim::PacketSimConfig with_empty = config;
  with_empty.faults = sim::FaultSchedule{};  // explicit empty schedule
  const sim::PacketSimResult empty_sched =
      sim::RunPacketSimSerial(net.Network(), routes, with_empty);
  EXPECT_EQ(empty_sched.delivered, plain.delivered);
  EXPECT_EQ(empty_sched.dropped, plain.dropped);
  EXPECT_EQ(empty_sched.latency.Mean(), plain.latency.Mean());
}

TEST_F(MonitorTest, BroadcastKillFiresAndMonitorOnDoesNotPerturb) {
  const topo::Abccc net{topo::AbcccParams{4, 1, 2}};
  const routing::SpanningTree tree = routing::AbcccBroadcastTree(net, 0);
  sim::BroadcastSimConfig plain;
  plain.message_rate = 0.2;  // stable: the fault-free tree drops no copies
  plain.duration = 600;
  plain.warmup = 100;
  const sim::BroadcastSimResult dark =
      sim::RunBroadcastSim(net.Network(), tree, plain);

  sim::BroadcastSimConfig monitored = plain;
  monitored.monitor.enabled = true;
  monitored.monitor.window_width = 20.0;
  const sim::BroadcastSimResult lit =
      sim::RunBroadcastSim(net.Network(), tree, monitored);
  EXPECT_EQ(lit.messages, dark.messages);
  EXPECT_EQ(lit.complete, dark.complete);
  EXPECT_EQ(lit.copies_dropped, dark.copies_dropped);
  EXPECT_EQ(lit.monitor.FireCount(), 0u);

  // Kill the root server's only NIC edge mid-run: the whole tree starves,
  // and the dead link's tx collapse must fire.
  const graph::EdgeId root_edge = net.Network().Neighbors(0)[0].edge;
  sim::BroadcastSimConfig faulted = monitored;
  faulted.faults.KillLink(300.0, root_edge);
  const sim::BroadcastSimResult result =
      sim::RunBroadcastSim(net.Network(), tree, faulted);
  EXPECT_GT(result.monitor.FireCount(), 0u);
  const std::vector<sim::DetectionOutcome> outcomes = sim::MatchDetections(
      net.Network(), faulted.faults, result.monitor);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].detected);
  EXPECT_GT(outcomes[0].ttd, 0.0);
  EXPECT_LT(result.complete, dark.complete);
}

TEST_F(MonitorTest, FluidKillTerminatesCrossingFlowsOnly) {
  Graph g;
  const graph::NodeId s0 = g.AddNode(NodeKind::kServer);
  const graph::NodeId s1 = g.AddNode(NodeKind::kServer);
  const graph::NodeId sw = g.AddNode(NodeKind::kSwitch);
  const graph::NodeId s2 = g.AddNode(NodeKind::kServer);
  const graph::NodeId s3 = g.AddNode(NodeKind::kServer);
  const graph::EdgeId e0 = g.AddEdge(s0, sw);
  g.AddEdge(sw, s1);
  g.AddEdge(s2, sw);
  g.AddEdge(sw, s3);
  const std::vector<Route> routes = {Route{{s0, sw, s1}}, Route{{s2, sw, s3}}};
  const std::vector<double> bytes = {10.0, 1.0};

  // No faults: overloads agree byte-for-byte.
  const sim::FluidResult plain = sim::FluidCompletionTimes(g, routes, bytes);
  const sim::FluidResult empty_sched =
      sim::FluidCompletionTimes(g, routes, bytes, sim::FaultSchedule{});
  EXPECT_EQ(plain.finish_time, empty_sched.finish_time);
  EXPECT_EQ(plain.killed_flows, 0u);
  EXPECT_EQ(empty_sched.killed_flows, 0u);

  // Kill flow 0's first edge at t=0.5: flow 0 dies, flow 1 unaffected.
  sim::FaultSchedule schedule;
  schedule.KillLink(0.5, e0);
  const sim::FluidResult faulted =
      sim::FluidCompletionTimes(g, routes, bytes, schedule);
  EXPECT_EQ(faulted.killed_flows, 1u);
  EXPECT_FALSE(std::isfinite(faulted.finish_time[0]));
  EXPECT_EQ(faulted.finish_time[1], plain.finish_time[1]);
}

TEST_F(MonitorTest, MatchDetectionsPairsFaultsWithAffectedEntities) {
  Graph g;
  g.AddNode(NodeKind::kSwitch);  // 0
  g.AddNode(NodeKind::kSwitch);  // 1
  const graph::EdgeId e0 = g.AddEdge(0, 1);

  MonitorResult result;
  result.enabled = true;
  result.entities = {EntityInfo{EntityKind::kLink, 0},
                     EntityInfo{EntityKind::kLink, 1},
                     EntityInfo{EntityKind::kNode, 0},
                     EntityInfo{EntityKind::kNode, 1}};
  result.signals = {"tx"};
  // Window order: a node-1 fire BEFORE the fault, then a link-0 fire after,
  // then a link-1 clear after the restore.
  result.alerts = {
      Alert{3, AlertKind::kFire, 0, 4, 100.0, 0, 0, 0},
      Alert{0, AlertKind::kFire, 0, 7, 150.0, 0, 0, 0},
      Alert{1, AlertKind::kClear, 0, 9, 180.0, 0, 0, 0},
  };

  sim::FaultSchedule schedule;
  schedule.KillLink(120.0, e0);     // matches the link-0 fire at 150
  schedule.RestoreLink(160.0, e0);  // restores match clears: 180
  schedule.KillLink(155.0, e0);     // only the pre-existing alerts: none >= 155
  const std::vector<sim::DetectionOutcome> outcomes =
      sim::MatchDetections(g, schedule, result);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].detected);
  EXPECT_EQ(outcomes[0].detect_time, 150.0);
  EXPECT_EQ(outcomes[0].ttd, 30.0);
  EXPECT_TRUE(outcomes[1].detected);
  EXPECT_EQ(outcomes[1].detect_time, 180.0);
  EXPECT_FALSE(outcomes[2].detected);
}

TEST_F(MonitorTest, AlertsSurfaceInJsonStatsAndChromeTrace) {
  const topo::Abccc net{topo::AbcccParams{4, 1, 2}};
  const std::vector<Route> routes = PermutationRoutes(net, 0x2404);
  // Kill the busiest server NIC edge mid-run to guarantee at least one fire.
  const Graph& g = net.Network();
  std::vector<std::uint32_t> link_flows(2 * g.EdgeCount(), 0);
  for (const Route& route : routes) {
    for (const std::uint64_t link : routing::RouteDirectedLinks(g, route)) {
      ++link_flows[link];
    }
  }
  graph::EdgeId busiest = 0;
  for (graph::EdgeId e = 1;
       e < static_cast<graph::EdgeId>(g.EdgeCount()); ++e) {
    if (std::max(link_flows[2 * e], link_flows[2 * e + 1]) >
        std::max(link_flows[2 * busiest], link_flows[2 * busiest + 1])) {
      busiest = e;
    }
  }
  sim::PacketSimConfig config;
  config.offered_load = 0.6;
  config.duration = 300;
  config.warmup = 50;
  config.monitor.enabled = true;
  config.monitor.window_width = 20.0;
  config.faults.KillLink(160.0, busiest);
  SetThreadCount(1);
  const sim::PacketSimResult result =
      sim::RunPacketSim(g, routes, config);
  ASSERT_GT(result.monitor.FireCount(), 0u);
  EXPECT_GT(obs::CounterValue("monitor/alerts_fired"), 0u);
  EXPECT_EQ(obs::CounterValue("monitor/runs"), 1u);

  const std::vector<MonitorRunSnapshot> runs = SnapshotRuns();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].sim, "packetsim");
  EXPECT_EQ(runs[0].faults_scheduled, 1u);

  std::ostringstream alerts;
  WriteAlertsJson(alerts, runs);
  const std::string doc = alerts.str();
  EXPECT_NE(doc.find("\"runs\": ["), std::string::npos);
  EXPECT_NE(doc.find("\"kind\": \"fire\""), std::string::npos);
  EXPECT_NE(doc.find("\"entity\": \"link:"), std::string::npos);
  EXPECT_NE(doc.find("\"recovery\": {"), std::string::npos);

  std::ostringstream stats;
  obs::WriteStatsJson(stats, obs::TakeSnapshot());
  EXPECT_NE(stats.str().find("\"alerts\": {\"runs\": ["), std::string::npos);

  std::ostringstream trace;
  obs::WriteChromeTrace(trace, obs::TakeSnapshot(), {}, runs);
  EXPECT_NE(trace.str().find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(trace.str().find("alert:fire"), std::string::npos);
  EXPECT_NE(trace.str().find("\"cat\": \"monitor\""), std::string::npos);

  // obs::Reset clears the run store.
  obs::Reset();
  EXPECT_TRUE(SnapshotRuns().empty());
}

}  // namespace
}  // namespace dcn::obs::monitor
