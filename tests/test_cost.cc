#include "topology/cost_model.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "metrics/capex.h"
#include "topology/abccc.h"
#include "topology/bcube.h"
#include "topology/fattree.h"

namespace dcn::topo {
namespace {

TEST(CostModelTest, PortAccountingIsConsistent) {
  for (int c : {2, 3}) {
    const Abccc net{AbcccParams{4, 2, c}};
    const CapexReport report = EvaluateCost(net);
    EXPECT_EQ(report.nic_ports + report.switch_ports, 2 * report.links);
    EXPECT_EQ(report.servers, net.ServerCount());
    EXPECT_EQ(report.switches, net.SwitchCount());
    EXPECT_EQ(report.links, net.LinkCount());
  }
}

TEST(CostModelTest, HandComputedTinyNetwork) {
  // ABCCC(2,0,2): m=1, 2 servers, 1 level switch, 2 links, no crossbars.
  const Abccc net{AbcccParams{2, 0, 2}};
  CostModel model;
  model.server_usd = 100;
  model.nic_port_usd = 10;
  model.switch_base_usd = 50;
  model.switch_port_usd = 5;
  model.cable_usd = 1;
  const CapexReport report = EvaluateCost(net, model);
  EXPECT_EQ(report.servers, 2u);
  EXPECT_EQ(report.switches, 1u);
  EXPECT_EQ(report.links, 2u);
  EXPECT_EQ(report.nic_ports, 2u);
  EXPECT_EQ(report.switch_ports, 2u);
  EXPECT_DOUBLE_EQ(report.servers_usd, 200.0);
  EXPECT_DOUBLE_EQ(report.nics_usd, 20.0);
  EXPECT_DOUBLE_EQ(report.switches_usd, 60.0);
  EXPECT_DOUBLE_EQ(report.cables_usd, 2.0);
  EXPECT_DOUBLE_EQ(report.total_usd, 282.0);
  EXPECT_DOUBLE_EQ(report.network_usd, 82.0);
  EXPECT_DOUBLE_EQ(report.per_server_usd, 141.0);
}

TEST(CostModelTest, PowerAccounting) {
  const Abccc net{AbcccParams{2, 0, 2}};
  CostModel model;
  model.server_watts = 100;
  model.nic_port_watts = 2;
  model.switch_base_watts = 10;
  model.switch_port_watts = 1;
  const CapexReport report = EvaluateCost(net, model);
  // 2 NIC ports * 2 W + 1 switch * 10 W + 2 switch ports * 1 W = 16 W.
  EXPECT_DOUBLE_EQ(report.network_watts, 16.0);
  EXPECT_DOUBLE_EQ(report.total_watts, 216.0);
  EXPECT_DOUBLE_EQ(report.watts_per_server, 108.0);
}

TEST(CostModelTest, MoreServerPortsCostMore) {
  // Same server count: BCube(4,1) vs ABCCC-equivalent with cheaper NICs.
  const Bcube bcube{BcubeParams{4, 2}};          // 64 servers, 3 ports each
  const Abccc abccc{AbcccParams{4, 2, 2}};       // uses dual-port servers
  const CapexReport b = EvaluateCost(bcube);
  const CapexReport a = EvaluateCost(abccc);
  const double bcube_nics_per_server =
      static_cast<double>(b.nic_ports) / static_cast<double>(b.servers);
  const double abccc_nics_per_server =
      static_cast<double>(a.nic_ports) / static_cast<double>(a.servers);
  EXPECT_GT(bcube_nics_per_server, abccc_nics_per_server);
}

TEST(CostModelTest, ToStringMentionsKeyNumbers) {
  const Abccc net{AbcccParams{2, 0, 2}};
  const std::string text = ToString(EvaluateCost(net));
  EXPECT_NE(text.find("2 servers"), std::string::npos);
  EXPECT_NE(text.find("1 switches"), std::string::npos);
}

TEST(GrowthTrajectoryTest, AbcccCumulativeCostIsMonotone) {
  const auto points = metrics::AbcccGrowthTrajectory(4, 2, 1, 3);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].cumulative_disruption, 0u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].servers, points[i - 1].servers);
    EXPECT_GT(points[i].cumulative_usd, points[i - 1].cumulative_usd);
    EXPECT_EQ(points[i].step_disruption, 0u);  // the paper's claim
  }
}

TEST(GrowthTrajectoryTest, BcubeAccumulatesDisruption) {
  const auto points = metrics::BcubeGrowthTrajectory(4, 1, 3);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_GT(points[1].step_disruption, 0u);
  EXPECT_GT(points[2].cumulative_disruption, points[1].cumulative_disruption);
}

TEST(GrowthTrajectoryTest, FatTreeStepCostExceedsDelta) {
  // Replacement makes a fat-tree step cost more than the plain cost delta.
  const auto points = metrics::FatTreeGrowthTrajectory(4, 6);
  ASSERT_EQ(points.size(), 2u);
  const CapexReport before = EvaluateCost(FatTree{FatTreeParams{4}});
  const CapexReport after = EvaluateCost(FatTree{FatTreeParams{6}});
  EXPECT_GT(points[1].step_usd, after.total_usd - before.total_usd);
  EXPECT_GT(points[1].step_disruption, 0u);
}

TEST(GrowthTrajectoryTest, DcellTrajectoryRuns) {
  const auto points = metrics::DcellGrowthTrajectory(3, 0, 2);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].servers, 3u);
  EXPECT_EQ(points[1].servers, 12u);
  EXPECT_EQ(points[2].servers, 156u);
}

TEST(GrowthTrajectoryTest, BadRangeThrows) {
  EXPECT_THROW(metrics::AbcccGrowthTrajectory(4, 2, 3, 1), dcn::InvalidArgument);
}

}  // namespace
}  // namespace dcn::topo
