// Documentation-fidelity tests: the code snippets README.md shows must
// compile and behave as described. If an API change breaks this file, update
// the README in the same commit.
#include <gtest/gtest.h>

#include <sstream>

#include "routing/abccc_routing.h"
#include "topology/abccc.h"

namespace dcn {
namespace {

TEST(ReadmeExamplesTest, LibraryQuickstartSnippet) {
  // Mirrors the "Or as a library:" block in README.md.
  dcn::topo::Abccc net{dcn::topo::AbcccParams{/*n=*/4, /*k=*/2, /*c=*/3}};
  auto src = net.ServerAt(dcn::topo::Digits{0, 0, 0}, 0);
  auto dst = net.ServerAt(dcn::topo::Digits{1, 2, 3}, 1);
  dcn::routing::Route route = dcn::routing::AbcccRoute(net, src, dst);
  std::ostringstream out;
  for (auto hop : route.hops) out << net.NodeLabel(hop) << "\n";

  // The snippet's claims: it routes, labels render, endpoints match.
  EXPECT_FALSE(route.Empty());
  EXPECT_EQ(route.Src(), src);
  EXPECT_EQ(route.Dst(), dst);
  EXPECT_NE(out.str().find("<000;0>"), std::string::npos);
  EXPECT_NE(out.str().find("<321;1>"), std::string::npos);
}

TEST(ReadmeExamplesTest, HeadlineParameterIdentities) {
  // "c = 2 *is* BCCC; c = k+2 *is* BCube" — the identities the README leads
  // with must hold structurally.
  const topo::AbcccParams bccc_point{4, 2, 2};
  EXPECT_EQ(bccc_point.RowLength(), 3);  // k+1 dual-port servers per row
  EXPECT_TRUE(bccc_point.HasCrossbars());

  const topo::AbcccParams bcube_point{4, 2, 4};  // c = k+2
  EXPECT_EQ(bcube_point.RowLength(), 1);
  EXPECT_FALSE(bcube_point.HasCrossbars());
  const topo::Abccc net{bcube_point};
  EXPECT_EQ(net.ServerCount(), 64u);       // n^(k+1), BCube's server count
  EXPECT_EQ(net.ServerPorts(), 3);         // k+1 ports, BCube's requirement
}

TEST(ReadmeExamplesTest, SeedDeterminismClaim) {
  // "Every stochastic component takes an explicit dcn::Rng seed, so every
  // experiment and test is reproducible bit-for-bit."
  Rng a{123}, b{123};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

}  // namespace
}  // namespace dcn
