// Exhaustive all-pairs properties on small networks — the strongest form of
// the routing correctness claims: EVERY ordered server pair, not a sample.
#include <gtest/gtest.h>

#include <memory>

#include "common/error.h"
#include "graph/bfs.h"
#include "routing/forwarding.h"
#include "routing/route.h"
#include "topology/bccc.h"
#include "topology/bcube.h"
#include "topology/dcell.h"
#include "topology/factory.h"
#include "topology/fattree.h"

namespace dcn {
namespace {

class AllPairs : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<topo::Topology> Net() const {
    return topo::MakeTopology(GetParam());
  }
};

TEST_P(AllPairs, EveryRouteIsValidAndBounded) {
  const auto net = Net();
  for (const graph::NodeId src : net->Servers()) {
    for (const graph::NodeId dst : net->Servers()) {
      const routing::Route route{net->Route(src, dst)};
      ASSERT_EQ(routing::ValidateRoute(net->Network(), route), "")
          << net->Describe() << " " << src << "->" << dst;
      ASSERT_EQ(route.Src(), src);
      ASSERT_EQ(route.Dst(), dst);
      ASSERT_LE(static_cast<int>(route.LinkCount()), net->RouteLengthBound());
    }
  }
}

TEST_P(AllPairs, EveryRouteAtLeastShortestPath) {
  const auto net = Net();
  for (const graph::NodeId src : net->Servers()) {
    const std::vector<int> dist = graph::BfsDistances(net->Network(), src);
    for (const graph::NodeId dst : net->Servers()) {
      const routing::Route route{net->Route(src, dst)};
      ASSERT_GE(static_cast<int>(route.LinkCount()), dist[dst])
          << net->Describe() << " " << src << "->" << dst;
    }
  }
}

// Symmetry of the hop metric: |route(a,b)| need not equal |route(b,a)| for
// every algorithm, but the *shortest* distances must be symmetric in an
// undirected network.
TEST_P(AllPairs, ShortestDistancesAreSymmetric) {
  const auto net = Net();
  const auto servers = net->Servers();
  std::vector<std::vector<int>> dist;
  dist.reserve(servers.size());
  for (const graph::NodeId src : servers) {
    dist.push_back(graph::BfsDistances(net->Network(), src));
  }
  for (std::size_t i = 0; i < servers.size(); ++i) {
    for (std::size_t j = 0; j < servers.size(); ++j) {
      ASSERT_EQ(dist[i][servers[j]], dist[j][servers[i]]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallNets, AllPairs,
                         ::testing::Values("abccc:n=2,k=2,c=2",
                                           "abccc:n=3,k=1,c=2",
                                           "abccc:n=3,k=2,c=3",
                                           "abccc:n=4,k=1,c=3",
                                           "bccc:n=2,k=1", "bcube:n=3,k=1",
                                           "bcube:n=2,k=3", "dcell:n=3,k=1",
                                           "dcell:n=2,k=2", "ficonn:n=4,k=1",
                                           "ficonn:n=4,k=2", "ficonn:n=2,k=2",
                                           "fattree:k=4"));

// Forwarding-specific exhaustive check: hop-by-hop forwarding reaches every
// destination from every source on the server-centric designs.
TEST(AllPairsForwarding, AbcccForwardingIsTotal) {
  const topo::Abccc net{topo::AbcccParams{3, 1, 2}};
  for (const graph::NodeId src : net.Servers()) {
    for (const graph::NodeId dst : net.Servers()) {
      const routing::Route route = routing::AbcccForwardRoute(net, src, dst);
      ASSERT_EQ(route.Dst(), dst);
      ASSERT_EQ(routing::ValidateRoute(net.Network(), route), "");
    }
  }
}

TEST(AllPairsForwarding, DcellForwardingIsTotal) {
  const topo::Dcell net{topo::DcellParams{3, 1}};
  for (const graph::NodeId src : net.Servers()) {
    for (const graph::NodeId dst : net.Servers()) {
      const routing::Route route = routing::DcellForwardRoute(net, src, dst);
      ASSERT_EQ(route.Dst(), dst);
      ASSERT_EQ(routing::ValidateRoute(net.Network(), route), "");
    }
  }
}

}  // namespace
}  // namespace dcn
