#include "routing/broadcast.h"

#include <gtest/gtest.h>

#include "common/error.h"

#include <tuple>

#include "common/rng.h"
#include "routing/route.h"
#include "topology/abccc.h"
#include "topology/bcube.h"
#include "topology/dcell.h"

namespace dcn::routing {
namespace {

using topo::Abccc;
using topo::AbcccParams;

class BroadcastSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {
 protected:
  AbcccParams P() const {
    const auto [n, k, c] = GetParam();
    return AbcccParams{n, k, c};
  }
};

TEST_P(BroadcastSweep, CoversEveryServer) {
  const Abccc net{P()};
  const SpanningTree tree = AbcccBroadcastTree(net, 0);
  EXPECT_EQ(tree.CoveredCount(), net.ServerCount());
  EXPECT_EQ(tree.root, 0);
}

TEST_P(BroadcastSweep, ParentChainsAreConsistent) {
  const Abccc net{P()};
  dcn::Rng rng{31};
  const auto servers = net.Servers();
  const graph::NodeId root = servers[rng.NextUint64(servers.size())];
  const SpanningTree tree = AbcccBroadcastTree(net, root);
  const graph::Graph& g = net.Network();
  for (const graph::NodeId server : servers) {
    if (server == root) {
      EXPECT_EQ(tree.parent[server], graph::kInvalidNode);
      EXPECT_EQ(tree.depth[server], 0);
      continue;
    }
    const graph::NodeId parent = tree.parent[server];
    const graph::NodeId via = tree.via[server];
    ASSERT_NE(parent, graph::kInvalidNode);
    ASSERT_NE(via, graph::kInvalidNode);
    EXPECT_TRUE(g.IsSwitch(via));
    EXPECT_TRUE(g.Adjacent(parent, via));
    EXPECT_TRUE(g.Adjacent(via, server));
    EXPECT_EQ(tree.depth[server], tree.depth[parent] + 2);
  }
}

TEST_P(BroadcastSweep, PathToIsAValidRoute) {
  const Abccc net{P()};
  const SpanningTree tree = AbcccBroadcastTree(net, 0);
  dcn::Rng rng{32};
  const auto servers = net.Servers();
  for (int trial = 0; trial < 20; ++trial) {
    const graph::NodeId target = servers[rng.NextUint64(servers.size())];
    const Route path = tree.PathTo(target);
    ASSERT_FALSE(path.Empty());
    EXPECT_EQ(path.Src(), 0);
    EXPECT_EQ(path.Dst(), target);
    EXPECT_EQ(ValidateRoute(net.Network(), path), "");
    EXPECT_EQ(static_cast<int>(path.LinkCount()), tree.depth[target]);
  }
}

TEST_P(BroadcastSweep, DepthIsLinearInOrder) {
  const AbcccParams p = P();
  const Abccc net{p};
  const SpanningTree tree = AbcccBroadcastTree(net, 0);
  // Worst case per level stage: 2 links across the level switch plus 2 links
  // of crossbar spread, after the initial 2-link row spread.
  EXPECT_LE(tree.MaxDepth(), 4 * (p.k + 1) + 2);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BroadcastSweep,
                         ::testing::Values(std::tuple{2, 1, 2}, std::tuple{2, 2, 2},
                                           std::tuple{3, 1, 2}, std::tuple{3, 2, 3},
                                           std::tuple{4, 1, 2}, std::tuple{4, 2, 3},
                                           std::tuple{4, 2, 4}, std::tuple{5, 1, 3},
                                           std::tuple{2, 4, 2}, std::tuple{6, 1, 2},
                                           std::tuple{3, 3, 2}, std::tuple{4, 3, 3}));

TEST(BroadcastTest, TreeLinkCountSharesUplinks) {
  // In one row of m servers, crossbar fan-out from the root uses m links
  // (1 uplink + m-1 downlinks), not 2(m-1).
  const Abccc net{AbcccParams{2, 2, 2}};  // m = 3
  const SpanningTree tree = AbcccBroadcastTree(net, 0);
  const std::size_t links = TreeLinkCount(net.Network(), tree);
  // A spanning tree over S servers has S-1 parent relations, each 2 links,
  // but shared relay uplinks reduce the distinct-link count strictly below.
  EXPECT_LT(links, 2 * (net.ServerCount() - 1));
  EXPECT_GE(links, net.ServerCount() - 1);
}

TEST(MulticastTest, ContainsTargetsAndTheirAncestors) {
  const Abccc net{AbcccParams{4, 2, 2}};
  dcn::Rng rng{33};
  const auto servers = net.Servers();
  std::vector<graph::NodeId> targets;
  for (int i = 0; i < 5; ++i) {
    targets.push_back(servers[rng.NextUint64(servers.size())]);
  }
  const SpanningTree tree = AbcccMulticastTree(net, 0, targets);
  for (const graph::NodeId target : targets) {
    EXPECT_TRUE(tree.Contains(target));
    // Walk to the root through kept nodes only.
    graph::NodeId at = target;
    int steps = 0;
    while (at != 0) {
      at = tree.parent[at];
      ASSERT_NE(at, graph::kInvalidNode);
      ASSERT_TRUE(tree.Contains(at));
      ASSERT_LT(++steps, 1000);
    }
  }
}

TEST(MulticastTest, PrunedTreeIsSmallerThanBroadcast) {
  const Abccc net{AbcccParams{4, 2, 2}};
  const std::vector<graph::NodeId> targets{1, 2};
  const SpanningTree full = AbcccBroadcastTree(net, 0);
  const SpanningTree pruned = AbcccMulticastTree(net, 0, targets);
  EXPECT_LT(pruned.CoveredCount(), full.CoveredCount());
  EXPECT_LE(TreeLinkCount(net.Network(), pruned),
            TreeLinkCount(net.Network(), full));
  EXPECT_GE(pruned.CoveredCount(), 3u);  // root + 2 targets
}

TEST(MulticastTest, DepthMatchesBroadcastDepth) {
  const Abccc net{AbcccParams{4, 1, 2}};
  const SpanningTree full = AbcccBroadcastTree(net, 0);
  const std::vector<graph::NodeId> targets{7};
  const SpanningTree pruned = AbcccMulticastTree(net, 0, targets);
  EXPECT_EQ(pruned.depth[7], full.depth[7]);
}

TEST(MulticastTest, InvalidTargetThrows) {
  const Abccc net{AbcccParams{4, 1, 2}};
  EXPECT_THROW(
      AbcccMulticastTree(net, 0, std::vector<graph::NodeId>{graph::kInvalidNode}),
      dcn::InvalidArgument);
}

TEST(BcubeBroadcastTest, CoversEveryServerAtDepthTwoPerLevel) {
  const topo::Bcube net{topo::BcubeParams{4, 2}};
  const SpanningTree tree = BcubeBroadcastTree(net, 0);
  EXPECT_EQ(tree.CoveredCount(), net.ServerCount());
  EXPECT_EQ(tree.MaxDepth(), 2 * (net.Params().k + 1));
  const graph::Graph& g = net.Network();
  for (const graph::NodeId server : net.Servers()) {
    if (server == tree.root) continue;
    EXPECT_TRUE(g.Adjacent(tree.parent[server], tree.via[server]));
    EXPECT_TRUE(g.Adjacent(tree.via[server], server));
    EXPECT_EQ(tree.depth[server], tree.depth[tree.parent[server]] + 2);
  }
}

TEST(BcubeBroadcastTest, PathsAreValidRoutes) {
  const topo::Bcube net{topo::BcubeParams{3, 1}};
  dcn::Rng rng{34};
  const SpanningTree tree = BcubeBroadcastTree(net, 4);
  for (int trial = 0; trial < 10; ++trial) {
    const graph::NodeId target =
        net.Servers()[rng.NextUint64(net.ServerCount())];
    const Route path = tree.PathTo(target);
    EXPECT_EQ(ValidateRoute(net.Network(), path), "");
  }
}

TEST(BcubeBroadcastTest, RootedAnywhere) {
  const topo::Bcube net{topo::BcubeParams{2, 3}};
  for (const graph::NodeId root : net.Servers()) {
    const SpanningTree tree = BcubeBroadcastTree(net, root);
    EXPECT_EQ(tree.CoveredCount(), net.ServerCount());
    EXPECT_EQ(tree.root, root);
  }
}

TEST(FallbackBroadcastTest, CoversAllSurvivorsUnderFailures) {
  const Abccc net{AbcccParams{4, 2, 2}};
  graph::FailureSet failures{net.Network()};
  // Kill a level switch and a server.
  failures.KillNode(net.LevelSwitchAt(0, topo::Digits{0, 0, 0}));
  failures.KillNode(5);
  const SpanningTree tree =
      FallbackBroadcastTree(net.Network(), 0, &failures);
  std::size_t live_servers = 0;
  for (const graph::NodeId server : net.Servers()) {
    if (!failures.NodeDead(server)) ++live_servers;
  }
  EXPECT_EQ(tree.CoveredCount(), live_servers);  // network still connected
  dcn::Rng rng{44};
  for (int trial = 0; trial < 15; ++trial) {
    const graph::NodeId target =
        net.Servers()[rng.NextUint64(net.ServerCount())];
    if (failures.NodeDead(target)) continue;
    const Route path = tree.PathTo(target);
    EXPECT_EQ(ValidateRoute(net.Network(), path, &failures), "");
  }
}

TEST(FallbackBroadcastTest, HealthyFallbackMatchesBfsDepths) {
  const Abccc net{AbcccParams{3, 1, 2}};
  const SpanningTree tree = FallbackBroadcastTree(net.Network(), 0);
  EXPECT_EQ(tree.CoveredCount(), net.ServerCount());
  // Depths are BFS-optimal, so never exceed the structured tree's.
  const SpanningTree structured = AbcccBroadcastTree(net, 0);
  for (const graph::NodeId server : net.Servers()) {
    EXPECT_LE(tree.depth[server], structured.depth[server]) << server;
  }
}

TEST(FallbackBroadcastTest, HandlesDirectServerLinks) {
  // DCell has direct server-server links: via must be kInvalidNode there and
  // PathTo/TreeLinkCount must handle it.
  const dcn::topo::Dcell dcell{4, 1};
  const SpanningTree tree = FallbackBroadcastTree(dcell.Network(), 0);
  EXPECT_EQ(tree.CoveredCount(), dcell.ServerCount());
  bool saw_direct = false;
  for (const graph::NodeId server : dcell.Servers()) {
    if (server == 0) continue;
    if (tree.via[server] == graph::kInvalidNode) saw_direct = true;
    const Route path = tree.PathTo(server);
    EXPECT_EQ(ValidateRoute(dcell.Network(), path), "");
  }
  EXPECT_TRUE(saw_direct);
  EXPECT_GT(TreeLinkCount(dcell.Network(), tree), 0u);
}

TEST(FallbackBroadcastTest, DeadRootRejected) {
  const Abccc net{AbcccParams{2, 1, 2}};
  graph::FailureSet failures{net.Network()};
  failures.KillNode(0);
  EXPECT_THROW(FallbackBroadcastTree(net.Network(), 0, &failures),
               dcn::InvalidArgument);
  EXPECT_THROW(FallbackBroadcastTree(net.Network(), net.CrossbarAt(0)),
               dcn::InvalidArgument);
}

}  // namespace
}  // namespace dcn::routing
