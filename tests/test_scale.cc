// Scale smoke tests: build the largest instances any bench touches (and a
// step beyond) and verify the structural invariants still hold. These guard
// against quadratic construction blowups and 32-bit id truncation — the
// kinds of bugs that only appear past toy sizes.
#include <gtest/gtest.h>

#include <chrono>

#include "common/rng.h"
#include "graph/bfs.h"
#include "graph/implicit.h"
#include "graph/workspace.h"
#include "routing/abccc_routing.h"
#include "routing/route.h"
#include "topology/abccc.h"
#include "topology/bcube.h"
#include "topology/dcell.h"
#include "topology/fattree.h"
#include "topology/ficonn.h"
#include "topology/implicit.h"

namespace dcn {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

TEST(ScaleTest, SixteenThousandServerAbcccBuildsFast) {
  const auto start = Clock::now();
  const topo::AbcccParams params{8, 3, 2};  // m=4, 8^4 rows -> 16384 servers
  const topo::Abccc net{params};
  EXPECT_EQ(net.ServerCount(), 16384u);
  EXPECT_EQ(net.SwitchCount(), params.CrossbarTotal() + params.LevelSwitchTotal());
  EXPECT_LT(SecondsSince(start), 5.0) << "construction must stay near-linear";

  // Sampled routing still valid and bounded at this size.
  Rng rng{17};
  const auto servers = net.Servers();
  for (int trial = 0; trial < 20; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    const routing::Route route = routing::AbcccRoute(net, src, dst);
    ASSERT_EQ(routing::ValidateRoute(net.Network(), route), "");
    ASSERT_LE(static_cast<int>(route.LinkCount()), net.RouteLengthBound());
  }
}

TEST(ScaleTest, DeepNarrowAbcccStaysCorrect) {
  // k = 7 with n = 2: 8 digits, long thin rows (m = 8 at c = 2).
  const topo::AbcccParams params{2, 7, 2};
  const topo::Abccc net{params};
  EXPECT_EQ(net.ServerCount(), 8u * 256u);
  const std::vector<int> dist = graph::BfsDistances(net.Network(), 0);
  int ecc = 0;
  for (const graph::NodeId server : net.Servers()) {
    ASSERT_NE(dist[server], graph::kUnreachable);
    ecc = std::max(ecc, dist[server]);
  }
  EXPECT_LE(ecc, net.RouteLengthBound());
}

TEST(ScaleTest, LargeBcubeAndFatTree) {
  const topo::Bcube bcube{8, 3};  // 4096 servers, 4 ports each
  EXPECT_EQ(bcube.ServerCount(), 4096u);
  EXPECT_TRUE(graph::IsConnected(bcube.Network()));

  const topo::FatTree fattree{24};  // 3456 servers
  EXPECT_EQ(fattree.ServerCount(), 3456u);
  const routing::Route route{
      fattree.Route(fattree.Servers().front(), fattree.Servers().back())};
  EXPECT_EQ(routing::ValidateRoute(fattree.Network(), route), "");
  EXPECT_EQ(route.LinkCount(), 6u);
}

TEST(ScaleTest, DcellLevelTwoAtBaseSix) {
  const topo::Dcell net{6, 2};  // 1806 servers
  EXPECT_EQ(net.ServerCount(), 1806u);
  Rng rng{19};
  const auto servers = net.Servers();
  for (int trial = 0; trial < 20; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    const routing::Route route{net.Route(src, dst)};
    ASSERT_EQ(routing::ValidateRoute(net.Network(), route), "");
    ASSERT_LE(static_cast<int>(route.LinkCount()), net.RouteLengthBound());
  }
}

TEST(ScaleTest, FiConnLevelThree) {
  const topo::FiConn net{4, 3};  // t_3 = 48 * 7 = 336
  EXPECT_EQ(net.ServerCount(), 336u);
  EXPECT_TRUE(graph::IsConnected(net.Network()));
  Rng rng{23};
  const auto servers = net.Servers();
  for (int trial = 0; trial < 20; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    const routing::Route route{net.Route(src, dst)};
    ASSERT_EQ(routing::ValidateRoute(net.Network(), route), "");
    ASSERT_LE(static_cast<int>(route.LinkCount()), net.RouteLengthBound());
  }
}

TEST(ScaleTest, SizeValidationRejectsOverflow) {
  // Parameter combinations whose node counts overflow must throw, not wrap.
  topo::AbcccParams huge{16, 15, 2};
  EXPECT_THROW(huge.Validate(), InvalidArgument);
  topo::BcubeParams big_bcube{256, 8};
  EXPECT_THROW(big_bcube.Validate(), InvalidArgument);
}

TEST(ScaleTest, PetascaleParamsValidateWithoutConstruction) {
  // 3.2e9 servers: every derived count fits 64 bits, so validation must
  // succeed — and allocate nothing — even though no graph could ever be
  // built. This is what lets cost models sweep petascale shapes.
  topo::AbcccParams petascale{32, 5, 3};
  EXPECT_NO_THROW(petascale.Validate());
  EXPECT_EQ(petascale.ServerTotal(), 3221225472u);
}

TEST(ScaleTest, LinkCountOverflowThrowsFromValidate) {
  // Server counts fit 64 bits but the LINK total wraps: Validate must catch
  // the derived-count overflow, not just the node counts.
  topo::AbcccParams wide{8, 19, 21};
  EXPECT_THROW(wide.Validate(), InvalidArgument);
  topo::BcubeParams wide_bcube{8, 19};
  EXPECT_THROW(wide_bcube.Validate(), InvalidArgument);
}

TEST(ScaleTest, MillionServerImplicitBfsInFrontierMemory) {
  // 3.1M servers, 4.5M nodes — far beyond anything the materialized builders
  // touch in CI — traversed with only the workspace allocation. The CI scale
  // smoke (bench_scale --smoke) runs the same instance under a hard ulimit.
  const topo::ImplicitCube cube = topo::ImplicitCube::MakeAbccc(16, 4, 3);
  EXPECT_EQ(cube.ServerCount(), 3145728u);
  graph::TraversalScope ws;
  const std::size_t reached = graph::BfsDistances(cube, 0, *ws);
  EXPECT_EQ(reached, cube.NodeCount());
  int ecc = 0;
  for (std::size_t i = 0; i < cube.ServerCount(); ++i) {
    ecc = std::max(ecc, ws->Dist(cube.ServerIdAt(i)));
  }
  EXPECT_LE(ecc, cube.RouteLengthBound());
  EXPECT_GE(ecc, 2 * (4 + 1));  // at least one digit-fix round trip per level
}

}  // namespace
}  // namespace dcn
