// obs/rollup.h: hierarchical rollups keep exact per-group integer totals —
// every level's total equals the flat sum of the leaves — merge key-wise in
// any order, summarize each level into a bounded (top-K + sketch) export,
// and the registry metric is bit-identical at any thread count.
#include "obs/rollup.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "obs/obs.h"

namespace dcn::obs {
namespace {

class RollupTest : public ::testing::Test {
 protected:
  void SetUp() override { Reset(); }
  void TearDown() override {
    Reset();
    SetThreadCount(0);
  }
};

std::vector<std::string> LinkLevels() {
  const auto span = LinkRollupLevels();
  return {span.begin(), span.end()};
}

// The simulators' leaf shape: a directed link, its transmitting node, the
// node's tier, and the single fabric group.
std::array<std::int64_t, 4> LeafGroups(std::int64_t link) {
  return {link, link / 4, link % 3 == 0 ? 0 : 1, 0};
}

TEST_F(RollupTest, EveryLevelTotalEqualsTheFlatSum) {
  Rollup rollup{LinkLevels()};
  Rng rng{0xfeed};
  std::int64_t flat = 0;
  std::uint64_t leaves = 0;
  for (std::size_t i = 0; i < 5000; ++i) {
    const auto link = static_cast<std::int64_t>(rng.NextUint64(64));
    const auto value = static_cast<std::int64_t>(rng.NextUint64(100));
    rollup.Add(LeafGroups(link), value);
    flat += value;
    ++leaves;
  }
  for (std::size_t level = 0; level < rollup.LevelCount(); ++level) {
    std::int64_t total = 0;
    std::uint64_t level_leaves = 0;
    for (const auto& [key, agg] : rollup.Level(level)) {
      total += agg.total;
      level_leaves += agg.leaves;
    }
    EXPECT_EQ(total, flat) << "level " << level;
    EXPECT_EQ(level_leaves, leaves) << "level " << level;
  }
  // The fabric level is one group holding everything.
  ASSERT_EQ(rollup.Level(3).size(), 1u);
  EXPECT_EQ(rollup.Level(3).at(0).total, flat);
}

TEST_F(RollupTest, MergeIsKeyWiseAndOrderFree) {
  Rollup a{LinkLevels()};
  Rollup b{LinkLevels()};
  Rollup whole{LinkLevels()};
  Rng rng{0xc0de};
  for (std::size_t i = 0; i < 2000; ++i) {
    const auto link = static_cast<std::int64_t>(rng.NextUint64(48));
    const auto value = static_cast<std::int64_t>(rng.NextUint64(20));
    (i % 2 == 0 ? a : b).Add(LeafGroups(link), value);
    whole.Add(LeafGroups(link), value);
  }
  Rollup ab = a;
  ab.Merge(b);
  Rollup ba;  // default-constructed target adopts the level chain
  ba.Merge(b);
  ba.Merge(a);
  EXPECT_EQ(ba.LevelNames(), whole.LevelNames());
  for (const Rollup& merged : {ab, ba}) {
    for (std::size_t level = 0; level < whole.LevelCount(); ++level) {
      const auto& lhs = merged.Level(level);
      const auto& rhs = whole.Level(level);
      ASSERT_EQ(lhs.size(), rhs.size());
      for (const auto& [key, agg] : rhs) {
        ASSERT_TRUE(lhs.contains(key));
        EXPECT_EQ(lhs.at(key).total, agg.total);
        EXPECT_EQ(lhs.at(key).leaves, agg.leaves);
      }
    }
  }
}

TEST_F(RollupTest, SummarizeIsBoundedAndExactWhereItClaimsToBe) {
  Rollup rollup{LinkLevels()};
  // 40 links; link 13 is the clear elephant.
  for (std::int64_t link = 0; link < 40; ++link) {
    rollup.Add(LeafGroups(link), link == 13 ? 5000 : 10 + link);
  }
  const auto summaries = rollup.Summarize(/*top_k=*/8);
  ASSERT_EQ(summaries.size(), 4u);
  const Rollup::LevelSummary& links = summaries[0];
  EXPECT_EQ(links.name, "link");
  EXPECT_EQ(links.groups, 40u);
  EXPECT_EQ(links.leaves, 40u);
  EXPECT_EQ(links.max_group_key, 13);
  EXPECT_EQ(links.max_group_total, 5000);
  const auto top = links.top.Top();
  ASSERT_LE(top.size(), 8u);
  EXPECT_EQ(top[0].key, 13);
  EXPECT_EQ(links.quantiles.Count(), 40u);
  // Totals agree across every summarized level.
  for (const auto& summary : summaries) {
    EXPECT_EQ(summary.total, links.total) << summary.name;
    EXPECT_EQ(summary.leaves, links.leaves) << summary.name;
  }
  EXPECT_EQ(summaries[3].groups, 1u);  // fabric
}

TEST_F(RollupTest, RollupMetricIsThreadCountInvariant) {
  auto run = [](int threads) {
    SetThreadCount(threads);
    Reset();
    static RollupMetric& metric =
        GetRollup("test/rollup_invariance", LinkRollupLevels());
    ParallelFor(3000, 11, [](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const auto link = static_cast<std::int64_t>(i % 56);
        metric.Add(LeafGroups(link), static_cast<std::int64_t>(i % 17));
      }
    });
    return metric.Merged();
  };
  const Rollup at1 = run(1);
  for (int threads : {3, 7}) {
    const Rollup at_n = run(threads);
    for (std::size_t level = 0; level < at1.LevelCount(); ++level) {
      const auto& lhs = at_n.Level(level);
      const auto& rhs = at1.Level(level);
      ASSERT_EQ(lhs.size(), rhs.size()) << "threads=" << threads;
      for (const auto& [key, agg] : rhs) {
        EXPECT_EQ(lhs.at(key).total, agg.total);
        EXPECT_EQ(lhs.at(key).leaves, agg.leaves);
      }
    }
  }
  // Snapshot surfaces the merged rollup under its registered name.
  const auto rows = TakeRollupSnapshot();
  bool found = false;
  for (const RollupRow& row : rows) {
    if (row.name == "test/rollup_invariance") {
      found = true;
      EXPECT_EQ(row.rollup.Level(3).at(0).total, at1.Level(3).at(0).total);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace dcn::obs
