#include "topology/abccc.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "common/error.h"
#include "graph/bfs.h"
#include "topology/bccc.h"
#include "topology/bcube.h"

namespace dcn::topo {
namespace {

TEST(AbcccParamsTest, Validation) {
  EXPECT_NO_THROW((AbcccParams{2, 0, 2}.Validate()));
  EXPECT_THROW((AbcccParams{1, 0, 2}.Validate()), dcn::InvalidArgument);
  EXPECT_THROW((AbcccParams{2, -1, 2}.Validate()), dcn::InvalidArgument);
  EXPECT_THROW((AbcccParams{2, 0, 1}.Validate()), dcn::InvalidArgument);
  EXPECT_THROW((AbcccParams{2, 63, 2}.Validate()), dcn::InvalidArgument);
}

TEST(AbcccParamsTest, RowLengthIsCeilDivision) {
  // m = ceil((k+1)/(c-1)).
  EXPECT_EQ((AbcccParams{4, 2, 2}.RowLength()), 3);   // 3 levels / 1 per server
  EXPECT_EQ((AbcccParams{4, 2, 3}.RowLength()), 2);   // ceil(3/2)
  EXPECT_EQ((AbcccParams{4, 2, 4}.RowLength()), 1);   // ceil(3/3)
  EXPECT_EQ((AbcccParams{4, 5, 3}.RowLength()), 3);   // ceil(6/2)
  EXPECT_EQ((AbcccParams{4, 0, 2}.RowLength()), 1);
}

TEST(AbcccParamsTest, AgentLevelSpans) {
  const AbcccParams p{4, 4, 3};  // 5 levels, c-1 = 2 => roles {0,1,2}
  EXPECT_EQ(p.AgentLevels(0), (std::pair<int, int>{0, 1}));
  EXPECT_EQ(p.AgentLevels(1), (std::pair<int, int>{2, 3}));
  EXPECT_EQ(p.AgentLevels(2), (std::pair<int, int>{4, 4}));  // truncated
  EXPECT_EQ(p.AgentRole(0), 0);
  EXPECT_EQ(p.AgentRole(3), 1);
  EXPECT_EQ(p.AgentRole(4), 2);
  EXPECT_THROW(p.AgentLevels(3), dcn::InvalidArgument);
}

TEST(AbcccParamsTest, PortsUsedNeverExceedsC) {
  for (int n : {2, 4}) {
    for (int k = 0; k <= 5; ++k) {
      for (int c = 2; c <= k + 3; ++c) {
        const AbcccParams p{n, k, c};
        for (int role = 0; role < p.RowLength(); ++role) {
          EXPECT_LE(p.PortsUsed(role), c) << "n=" << n << " k=" << k << " c=" << c;
          EXPECT_GE(p.PortsUsed(role), 1);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Structural sweep over (n, k, c).
// ---------------------------------------------------------------------------

class AbcccStructure
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {
 protected:
  AbcccParams P() const {
    const auto [n, k, c] = GetParam();
    return AbcccParams{n, k, c};
  }
};

TEST_P(AbcccStructure, CountsMatchFormulas) {
  const AbcccParams p = P();
  const Abccc net{p};
  EXPECT_EQ(net.ServerCount(), p.ServerTotal());
  EXPECT_EQ(net.SwitchCount(), p.CrossbarTotal() + p.LevelSwitchTotal());
  EXPECT_EQ(net.LinkCount(), p.LinkTotal());
}

TEST_P(AbcccStructure, DegreesMatchRoles) {
  const AbcccParams p = P();
  const Abccc net{p};
  const graph::Graph& g = net.Network();
  for (const graph::NodeId server : net.Servers()) {
    const AbcccAddress addr = net.AddressOf(server);
    EXPECT_EQ(g.Degree(server), static_cast<std::size_t>(p.PortsUsed(addr.role)));
  }
  if (p.HasCrossbars()) {
    for (std::uint64_t row = 0; row < p.RowCount(); ++row) {
      EXPECT_EQ(g.Degree(net.CrossbarAt(row)),
                static_cast<std::size_t>(p.RowLength()));
    }
  }
  // Every level switch has exactly n ports.
  std::size_t checked = 0;
  for (graph::NodeId node = 0; static_cast<std::size_t>(node) < g.NodeCount();
       ++node) {
    if (!g.IsSwitch(node)) continue;
    if (p.HasCrossbars() &&
        static_cast<std::uint64_t>(node) <
            p.ServerTotal() + p.CrossbarTotal()) {
      continue;  // crossbar, already checked
    }
    EXPECT_EQ(g.Degree(node), static_cast<std::size_t>(p.n));
    ++checked;
  }
  EXPECT_EQ(checked, p.LevelSwitchTotal());
}

TEST_P(AbcccStructure, AddressRoundTrip) {
  const Abccc net{P()};
  for (const graph::NodeId server : net.Servers()) {
    const AbcccAddress addr = net.AddressOf(server);
    EXPECT_EQ(net.ServerAt(addr.digits, addr.role), server);
  }
}

TEST_P(AbcccStructure, AgentAdjacency) {
  const AbcccParams p = P();
  const Abccc net{p};
  const graph::Graph& g = net.Network();
  for (const graph::NodeId server : net.Servers()) {
    const AbcccAddress addr = net.AddressOf(server);
    const auto [lo, hi] = p.AgentLevels(addr.role);
    for (int level = lo; level <= hi; ++level) {
      EXPECT_TRUE(g.Adjacent(server, net.LevelSwitchAt(level, addr.digits)));
    }
    if (p.HasCrossbars()) {
      EXPECT_TRUE(g.Adjacent(server, net.CrossbarAt(net.RowOf(server))));
    }
  }
}

TEST_P(AbcccStructure, LevelSwitchConnectsPlane) {
  const AbcccParams p = P();
  const Abccc net{p};
  const graph::Graph& g = net.Network();
  // Pick the all-zero row; the level-l switch must connect exactly the n
  // agent servers whose digit l varies.
  Digits digits(static_cast<std::size_t>(p.k + 1), 0);
  for (int level = 0; level <= p.k; ++level) {
    const graph::NodeId sw = net.LevelSwitchAt(level, digits);
    std::set<graph::NodeId> expected;
    Digits probe = digits;
    for (int d = 0; d < p.n; ++d) {
      probe[level] = d;
      expected.insert(net.ServerAt(probe, p.AgentRole(level)));
    }
    std::set<graph::NodeId> actual;
    for (const graph::HalfEdge& half : g.Neighbors(sw)) actual.insert(half.to);
    EXPECT_EQ(actual, expected) << "level " << level;
  }
}

TEST_P(AbcccStructure, IsConnected) {
  const Abccc net{P()};
  EXPECT_TRUE(graph::IsConnected(net.Network()));
}

TEST_P(AbcccStructure, DiameterWithinRouteBound) {
  const Abccc net{P()};
  // BFS from server 0 bounds the eccentricity; vertex symmetry makes this
  // representative, and the route bound must dominate it.
  const std::vector<int> dist = graph::BfsDistances(net.Network(), 0);
  int ecc = 0;
  for (const graph::NodeId server : net.Servers()) {
    ASSERT_NE(dist[server], graph::kUnreachable);
    ecc = std::max(ecc, dist[server]);
  }
  EXPECT_LE(ecc, net.RouteLengthBound());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AbcccStructure,
    ::testing::Values(std::tuple{2, 0, 2}, std::tuple{2, 1, 2},
                      std::tuple{2, 2, 2}, std::tuple{2, 3, 3},
                      std::tuple{3, 1, 2}, std::tuple{3, 2, 2},
                      std::tuple{3, 2, 3}, std::tuple{3, 2, 4},
                      std::tuple{4, 1, 2}, std::tuple{4, 2, 3},
                      std::tuple{4, 2, 5}, std::tuple{4, 3, 4},
                      std::tuple{5, 1, 3}, std::tuple{6, 1, 2},
                      std::tuple{8, 1, 2}, std::tuple{4, 3, 2},
                      std::tuple{2, 5, 2}, std::tuple{3, 3, 4},
                      std::tuple{5, 2, 2}, std::tuple{7, 1, 2},
                      std::tuple{4, 3, 5}, std::tuple{6, 2, 4}));

// ---------------------------------------------------------------------------
// Degenerate cases and identities.
// ---------------------------------------------------------------------------

TEST(AbcccTest, LargeCDegeneratesToBcubeShape) {
  // c >= k+2 means one server per row and no crossbars: BCube's shape.
  const AbcccParams p{4, 2, 4};
  const Abccc net{p};
  const BcubeParams bp{4, 2};
  const Bcube bcube{bp};
  EXPECT_FALSE(p.HasCrossbars());
  EXPECT_EQ(net.ServerCount(), bcube.ServerCount());
  EXPECT_EQ(net.SwitchCount(), bcube.SwitchCount());
  EXPECT_EQ(net.LinkCount(), bcube.LinkCount());
  EXPECT_EQ(net.ServerPorts(), bcube.ServerPorts());
}

TEST(AbcccTest, BcccIsAbcccWithTwoPorts) {
  const Bccc bccc{4, 2};
  const Abccc abccc{AbcccParams{4, 2, 2}};
  EXPECT_EQ(bccc.Params().c, 2);
  EXPECT_EQ(bccc.ServerCount(), abccc.ServerCount());
  EXPECT_EQ(bccc.LinkCount(), abccc.LinkCount());
  EXPECT_EQ(bccc.Name(), "BCCC");
  EXPECT_EQ(bccc.Describe(), "BCCC(n=4,k=2)");
  // Graphs are identical node-for-node (same construction order).
  const graph::Graph& a = bccc.Network();
  const graph::Graph& b = abccc.Network();
  ASSERT_EQ(a.EdgeCount(), b.EdgeCount());
  for (graph::EdgeId e = 0; static_cast<std::size_t>(e) < a.EdgeCount(); ++e) {
    EXPECT_EQ(a.Endpoints(e), b.Endpoints(e));
  }
}

TEST(AbcccTest, ServerPortsReportsDesignRequirement) {
  const Abccc two_port{AbcccParams{4, 2, 2}};
  EXPECT_EQ(two_port.ServerPorts(), 2);
  const Abccc three_port{AbcccParams{4, 4, 3}};
  EXPECT_EQ(three_port.ServerPorts(), 3);
  const Abccc bcube_like{AbcccParams{4, 2, 4}};  // m == 1: k+1 ports
  EXPECT_EQ(bcube_like.ServerPorts(), 3);
}

TEST(AbcccTest, NodeLabels) {
  const Abccc net{AbcccParams{4, 1, 2}};
  EXPECT_EQ(net.NodeLabel(net.ServerAt(Digits{2, 1}, 0)), "<12;0>");
  EXPECT_EQ(net.NodeLabel(net.CrossbarAt(0)), "X(00)");
  const graph::NodeId sw = net.LevelSwitchAt(0, Digits{3, 2});
  EXPECT_EQ(net.NodeLabel(sw), "S0(2*)");
  EXPECT_THROW(net.NodeLabel(-1), dcn::InvalidArgument);
}

TEST(AbcccTest, DescribeMentionsAllParameters) {
  const Abccc net{AbcccParams{5, 2, 3}};
  EXPECT_EQ(net.Describe(), "ABCCC(n=5,k=2,c=3)");
  EXPECT_EQ(net.Name(), "ABCCC");
}

TEST(AbcccTest, AccessorPreconditions) {
  const Abccc net{AbcccParams{4, 1, 2}};
  EXPECT_THROW(net.AddressOf(-1), dcn::InvalidArgument);
  EXPECT_THROW(net.AddressOf(static_cast<graph::NodeId>(net.ServerCount())),
               dcn::InvalidArgument);
  EXPECT_THROW(net.ServerAt(Digits{0}, 0), dcn::InvalidArgument);  // wrong size
  EXPECT_THROW(net.ServerAtRow(0, 9), dcn::InvalidArgument);
  EXPECT_THROW(net.LevelSwitchAt(5, Digits{0, 0}), dcn::InvalidArgument);
  const Abccc flat{AbcccParams{4, 0, 2}};  // m == 1: no crossbars
  EXPECT_THROW(flat.CrossbarAt(0), dcn::InvalidArgument);
}

TEST(AbcccTest, TheoreticalBisectionMatchesMeasuredCutShape) {
  // For even n the analytic most-significant-digit cut is n^k * n/2.
  const Abccc net{AbcccParams{4, 1, 2}};
  EXPECT_DOUBLE_EQ(net.TheoreticalBisection(), 4.0 * 2.0);
}

TEST(AbcccTest, BisectionHalvesSplitOnMostSignificantDigit) {
  const AbcccParams p{4, 1, 2};
  const Abccc net{p};
  const auto [side_a, side_b] = net.BisectionHalves();
  EXPECT_EQ(side_a.size(), side_b.size());
  for (const graph::NodeId server : side_a) {
    EXPECT_LT(net.AddressOf(server).digits[p.k], p.n / 2);
  }
  for (const graph::NodeId server : side_b) {
    EXPECT_GE(net.AddressOf(server).digits[p.k], p.n / 2);
  }
}

}  // namespace
}  // namespace dcn::topo
