#include "graph/maxflow.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace dcn::graph {
namespace {

TEST(MaxFlowTest, SingleEdge) {
  Graph g;
  const NodeId a = g.AddNode(NodeKind::kServer);
  const NodeId b = g.AddNode(NodeKind::kServer);
  g.AddEdge(a, b);
  const std::vector<NodeId> src{a}, dst{b};
  EXPECT_EQ(MinCutBetween(g, src, dst), 1);
  EXPECT_EQ(MinCutBetween(g, src, dst, 5), 5);
}

TEST(MaxFlowTest, ParallelEdgesAdd) {
  Graph g;
  const NodeId a = g.AddNode(NodeKind::kServer);
  const NodeId b = g.AddNode(NodeKind::kServer);
  g.AddEdge(a, b);
  g.AddEdge(a, b);
  g.AddEdge(a, b);
  EXPECT_EQ(MinCutBetween(g, std::vector<NodeId>{a}, std::vector<NodeId>{b}), 3);
}

TEST(MaxFlowTest, CycleGivesTwo) {
  Graph g;
  for (int i = 0; i < 4; ++i) g.AddNode(NodeKind::kServer);
  for (int i = 0; i < 4; ++i) g.AddEdge(i, (i + 1) % 4);
  EXPECT_EQ(MinCutBetween(g, std::vector<NodeId>{0}, std::vector<NodeId>{2}), 2);
}

TEST(MaxFlowTest, BridgeLimitsFlow) {
  // Two triangles joined by one bridge: cut = 1.
  Graph g;
  for (int i = 0; i < 6; ++i) g.AddNode(NodeKind::kServer);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  g.AddEdge(5, 3);
  g.AddEdge(2, 3);  // bridge
  EXPECT_EQ(MinCutBetween(g, std::vector<NodeId>{0}, std::vector<NodeId>{5}), 1);
}

TEST(MaxFlowTest, CompleteGraphK4) {
  Graph g;
  for (int i = 0; i < 4; ++i) g.AddNode(NodeKind::kServer);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) g.AddEdge(i, j);
  }
  // Min cut isolating a vertex of degree 3.
  EXPECT_EQ(MinCutBetween(g, std::vector<NodeId>{0}, std::vector<NodeId>{3}), 3);
}

TEST(MaxFlowTest, SetToSetFlow) {
  // Star: center 4, leaves 0..3. Cut between {0,1} and {2,3} is 2 (the two
  // source attachment links saturate).
  Graph g;
  for (int i = 0; i < 5; ++i) g.AddNode(NodeKind::kServer);
  for (int i = 0; i < 4; ++i) g.AddEdge(i, 4);
  EXPECT_EQ(MinCutBetween(g, std::vector<NodeId>{0, 1}, std::vector<NodeId>{2, 3}),
            2);
}

TEST(MaxFlowTest, FailuresReduceCut) {
  Graph g;
  for (int i = 0; i < 4; ++i) g.AddNode(NodeKind::kServer);
  const EdgeId top = g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 3);
  g.AddEdge(3, 2);
  EXPECT_EQ(MinCutBetween(g, std::vector<NodeId>{0}, std::vector<NodeId>{2}), 2);
  FailureSet failures{g};
  failures.KillEdge(top);
  EXPECT_EQ(
      MinCutBetween(g, std::vector<NodeId>{0}, std::vector<NodeId>{2}, 1, &failures),
      1);
  failures.KillNode(3);
  EXPECT_EQ(
      MinCutBetween(g, std::vector<NodeId>{0}, std::vector<NodeId>{2}, 1, &failures),
      0);
}

TEST(MaxFlowTest, DisconnectedGivesZero) {
  Graph g;
  g.AddNode(NodeKind::kServer);
  g.AddNode(NodeKind::kServer);
  EXPECT_EQ(MinCutBetween(g, std::vector<NodeId>{0}, std::vector<NodeId>{1}), 0);
}

TEST(MaxFlowTest, PreconditionViolations) {
  Graph g;
  const NodeId a = g.AddNode(NodeKind::kServer);
  const NodeId b = g.AddNode(NodeKind::kServer);
  g.AddEdge(a, b);
  MaxFlowSolver solver{g};
  EXPECT_THROW(solver.Solve({}, std::vector<NodeId>{b}), InvalidArgument);
  EXPECT_THROW(
      MinCutBetween(g, std::vector<NodeId>{a}, std::vector<NodeId>{a}),
      InvalidArgument);
  EXPECT_THROW(MaxFlowSolver(g, 0), InvalidArgument);
}

TEST(MaxFlowTest, SolveRequiresResetBetweenSolves) {
  Graph g;
  const NodeId a = g.AddNode(NodeKind::kServer);
  const NodeId b = g.AddNode(NodeKind::kServer);
  g.AddEdge(a, b);
  MaxFlowSolver solver{g};
  EXPECT_EQ(solver.Solve(std::vector<NodeId>{a}, std::vector<NodeId>{b}), 1);
  // The residual network of the first solve is still loaded: solving again
  // without Reset() must throw rather than return garbage.
  EXPECT_THROW(solver.Solve(std::vector<NodeId>{a}, std::vector<NodeId>{b}),
               InvalidArgument);
  solver.Reset();
  EXPECT_EQ(solver.Solve(std::vector<NodeId>{a}, std::vector<NodeId>{b}), 1);
}

TEST(MaxFlowTest, ReusedSolverMatchesFreshSolvers) {
  // K4 plus a pendant: several distinct terminal pairs with different cuts.
  Graph g;
  for (int i = 0; i < 5; ++i) g.AddNode(NodeKind::kServer);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) g.AddEdge(i, j);
  }
  g.AddEdge(3, 4);
  MaxFlowSolver reused{g};
  bool first = true;
  for (NodeId src = 0; src < 5; ++src) {
    for (NodeId dst = 0; dst < 5; ++dst) {
      if (src == dst) continue;
      if (!first) reused.Reset();
      first = false;
      MaxFlowSolver fresh{g};
      EXPECT_EQ(reused.Solve(std::vector<NodeId>{src}, std::vector<NodeId>{dst}),
                fresh.Solve(std::vector<NodeId>{src}, std::vector<NodeId>{dst}))
          << src << " -> " << dst;
    }
  }
}

TEST(MaxFlowTest, MinCutSourceSideSeparatesTerminals) {
  // Two triangles joined by a single bridge: cut 1, source side = triangle A.
  Graph g;
  for (int i = 0; i < 6; ++i) g.AddNode(NodeKind::kServer);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  g.AddEdge(5, 3);
  g.AddEdge(2, 3);  // the bridge
  MaxFlowSolver solver{g};
  EXPECT_EQ(solver.Solve(std::vector<NodeId>{0}, std::vector<NodeId>{5}), 1);
  std::vector<char> side;
  solver.MinCutSourceSide(side);
  ASSERT_EQ(side.size(), 6u);
  for (NodeId n = 0; n < 3; ++n) EXPECT_TRUE(side[n]) << n;
  for (NodeId n = 3; n < 6; ++n) EXPECT_FALSE(side[n]) << n;
  // Crossing edges must number exactly the flow value.
  std::size_t crossing = 0;
  for (EdgeId e = 0; static_cast<std::size_t>(e) < g.EdgeCount(); ++e) {
    const auto [u, v] = g.Endpoints(e);
    if (side[u] != side[v]) ++crossing;
  }
  EXPECT_EQ(crossing, 1u);
}

}  // namespace
}  // namespace dcn::graph
