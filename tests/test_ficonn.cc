#include "topology/ficonn.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/error.h"
#include "common/rng.h"
#include "graph/bfs.h"
#include "routing/route.h"

namespace dcn::topo {
namespace {

TEST(FiConnParamsTest, RecurrenceAndValidation) {
  // t_0 = 4; g_1 = 4/2+1 = 3; t_1 = 12; g_2 = 12/4+1 = 4; t_2 = 48.
  const FiConnParams p{4, 2};
  EXPECT_NO_THROW(p.Validate());
  EXPECT_EQ(p.ServersAtLevel(0), 4u);
  EXPECT_EQ(p.ServersAtLevel(1), 12u);
  EXPECT_EQ(p.ServersAtLevel(2), 48u);
  EXPECT_EQ(p.CopiesAtLevel(1), 3u);
  EXPECT_EQ(p.CopiesAtLevel(2), 4u);
  EXPECT_EQ(p.IdleAtLevel(0), 4u);
  EXPECT_EQ(p.IdleAtLevel(1), 6u);
  EXPECT_EQ(p.IdleAtLevel(2), 12u);

  EXPECT_THROW((FiConnParams{3, 1}.Validate()), dcn::InvalidArgument);  // odd n
  EXPECT_THROW((FiConnParams{4, -1}.Validate()), dcn::InvalidArgument);
  EXPECT_THROW((FiConnParams{4, 5}.Validate()), dcn::InvalidArgument);
  // n = 2, k = 2: t_1 = 2*2=4, divisible by 4 -> fine; k=3: t_2 = 4*2 = 8,
  // divisible by 8 -> fine. n = 6, k = 2: t_1 = 6*4 = 24 divisible by 4 ✓.
  EXPECT_NO_THROW((FiConnParams{6, 2}.Validate()));
}

class FiConnSweep : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  FiConnParams P() const {
    const auto [n, k] = GetParam();
    return FiConnParams{n, k};
  }
};

TEST_P(FiConnSweep, CountsMatchFormulas) {
  const FiConnParams p = P();
  const FiConn net{p};
  EXPECT_EQ(net.ServerCount(), p.ServerTotal());
  EXPECT_EQ(net.SwitchCount(), p.SwitchTotal());
  EXPECT_EQ(net.LinkCount(), p.LinkTotal());
}

TEST_P(FiConnSweep, ServersNeverExceedTwoPorts) {
  const FiConn net{P()};
  std::size_t idle = 0;
  for (const graph::NodeId server : net.Servers()) {
    const std::size_t degree = net.Network().Degree(server);
    ASSERT_GE(degree, 1u);
    ASSERT_LE(degree, 2u);
    if (degree == 1) {
      EXPECT_TRUE(net.HasIdleBackupPort(server));
      ++idle;
    } else {
      EXPECT_FALSE(net.HasIdleBackupPort(server));
    }
  }
  // The defining invariant: t_k / 2^k backup ports remain idle for growth.
  EXPECT_EQ(idle, P().IdleAtLevel(P().k));
}

TEST_P(FiConnSweep, Connected) {
  const FiConn net{P()};
  EXPECT_TRUE(graph::IsConnected(net.Network()));
}

TEST_P(FiConnSweep, RoutesValidAndBounded) {
  const FiConn net{P()};
  dcn::Rng rng{71};
  const auto servers = net.Servers();
  for (int trial = 0; trial < 60; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    const routing::Route route{net.Route(src, dst)};
    ASSERT_EQ(routing::ValidateRoute(net.Network(), route), "")
        << net.Describe() << " " << src << "->" << dst;
    ASSERT_EQ(route.Src(), src);
    ASSERT_EQ(route.Dst(), dst);
    ASSERT_LE(static_cast<int>(route.LinkCount()), net.RouteLengthBound());
  }
}

TEST_P(FiConnSweep, RouteNeverShorterThanBfs) {
  const FiConn net{P()};
  dcn::Rng rng{72};
  const auto servers = net.Servers();
  for (int trial = 0; trial < 10; ++trial) {
    const graph::NodeId src = servers[rng.NextUint64(servers.size())];
    const std::vector<int> dist = graph::BfsDistances(net.Network(), src);
    const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
    const routing::Route route{net.Route(src, dst)};
    ASSERT_GE(static_cast<int>(route.LinkCount()), dist[dst]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FiConnSweep,
                         ::testing::Values(std::tuple{2, 0}, std::tuple{2, 1},
                                           std::tuple{2, 2}, std::tuple{4, 1},
                                           std::tuple{4, 2}, std::tuple{4, 3},
                                           std::tuple{6, 1}, std::tuple{6, 2},
                                           std::tuple{8, 1}, std::tuple{8, 2}));

TEST(FiConnTest, LevelOneLinkRule) {
  // FiConn(4,1): copies of 4 servers; available #p has local uid 1 + 2p
  // (odd uids). Copies i<j joined at (copy i, local 1+2(j-1)) -- (copy j,
  // local 1+2i).
  const FiConn net{FiConnParams{4, 1}};
  const graph::Graph& g = net.Network();
  // (0,1): copy0 local 1 = server 1 <-> copy1 local 1 = server 5.
  EXPECT_TRUE(g.Adjacent(1, 5));
  // (0,2): copy0 local 3 = server 3 <-> copy2 local 1 = server 9.
  EXPECT_TRUE(g.Adjacent(3, 9));
  // (1,2): copy1 local 3 = server 7 <-> copy2 local 3 = server 11.
  EXPECT_TRUE(g.Adjacent(7, 11));
  // Even-uid servers keep their backup ports idle.
  EXPECT_TRUE(net.HasIdleBackupPort(0));
  EXPECT_TRUE(net.HasIdleBackupPort(6));
  EXPECT_FALSE(net.HasIdleBackupPort(1));
}

TEST(FiConnTest, SameCellRouteUsesTheSwitch) {
  const FiConn net{FiConnParams{4, 1}};
  const routing::Route route{net.Route(0, 2)};
  ASSERT_EQ(route.hops.size(), 3u);
  EXPECT_EQ(route.hops[1], net.SwitchOf(0));
}

TEST(FiConnTest, CopyAtAndLabels) {
  const FiConn net{FiConnParams{4, 2}};  // t_1 = 12
  // Server 30: copy 30/12 = 2 at level 2; (30 % 12)/4 = 1 at level 1.
  EXPECT_EQ(net.CopyAt(30, 2), 2u);
  EXPECT_EQ(net.CopyAt(30, 1), 1u);
  EXPECT_EQ(net.NodeLabel(30), "[2,1,2]");
  EXPECT_EQ(net.Describe(), "FiConn(n=4,k=2)");
  EXPECT_THROW(net.CopyAt(30, 0), dcn::InvalidArgument);
}

TEST(FiConnTest, CheaperThanBcccInLinks) {
  // Same 2-port cost class: FiConn uses strictly fewer links and switches
  // per server than ABCCC(c=2) — its selling point — at similar scale.
  const FiConn ficonn{FiConnParams{8, 2}};  // t = 8*5=40, g2=11 -> 440
  const double links_per_server = static_cast<double>(ficonn.LinkCount()) /
                                  static_cast<double>(ficonn.ServerCount());
  EXPECT_LT(links_per_server, 2.0);  // vs exactly 2.0 for BCCC
}

}  // namespace
}  // namespace dcn::topo
