#include "metrics/resilience.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "graph/bfs.h"
#include "topology/abccc.h"
#include "topology/bcube.h"

namespace dcn::metrics {
namespace {

using topo::Abccc;
using topo::AbcccParams;

TEST(ResilienceTest, HealthyNetworkHasZeroDisconnection) {
  const Abccc net{AbcccParams{4, 1, 2}};
  graph::FailureSet failures{net.Network()};
  dcn::Rng rng{1};
  EXPECT_DOUBLE_EQ(PairDisconnectionFraction(net, failures, 200, rng), 0.0);
  EXPECT_DOUBLE_EQ(ServerLossFraction(net, failures), 0.0);
}

TEST(ResilienceTest, SingleSwitchLossDisconnectsNothingInAbccc) {
  // Every ABCCC server pair has 2 link-disjoint paths, so one dead switch
  // cannot partition live servers.
  const Abccc net{AbcccParams{4, 1, 2}};
  dcn::Rng rng{2};
  EXPECT_DOUBLE_EQ(WorstSingleSwitchDisconnection(net, 100, 0, rng), 0.0);
}

TEST(ResilienceTest, IsolatingAllOfAServersSwitchesDisconnectsIt) {
  const AbcccParams p{4, 1, 2};
  const Abccc net{p};
  // Kill server 0's two attachment points: its crossbar and its level
  // switch. Server 0 is alive but unreachable.
  graph::FailureSet failures{net.Network()};
  failures.KillNode(net.CrossbarAt(0));
  failures.KillNode(net.LevelSwitchAt(0, topo::Digits{0, 0}));
  dcn::Rng rng{3};
  const double fraction = PairDisconnectionFraction(net, failures, 400, rng);
  EXPECT_GT(fraction, 0.0);
  EXPECT_LT(fraction, 0.2);  // blast radius is one server's pairs
}

TEST(ResilienceTest, ServerLossFractionCountsDeadEndpoints) {
  const Abccc net{AbcccParams{4, 1, 2}};  // 32 servers
  graph::FailureSet failures{net.Network()};
  failures.KillNode(0);
  failures.KillNode(1);
  failures.KillNode(net.CrossbarAt(3));  // switches don't count
  EXPECT_DOUBLE_EQ(ServerLossFraction(net, failures), 2.0 / 32.0);
}

TEST(ResilienceTest, KillRackRemovesItsEquipmentOnly) {
  const Abccc net{AbcccParams{4, 2, 2}};  // 192 servers, 40 per rack
  const graph::FailureSet failures = KillRack(net, 0);
  // Exactly the rack-0 servers are dead.
  const std::vector<std::size_t> racks = topo::AssignRacks(net);
  for (const graph::NodeId server : net.Servers()) {
    EXPECT_EQ(failures.NodeDead(server), racks[server] == 0u);
  }
  EXPECT_GT(failures.DeadNodeCount(), 40u);  // servers + co-located switches
  EXPECT_THROW(KillRack(net, 9999), dcn::InvalidArgument);
}

TEST(ResilienceTest, RackLossBlastRadiusStaysNearItsOwnServers) {
  const Abccc net{AbcccParams{4, 2, 2}};
  const graph::FailureSet failures = KillRack(net, 1);
  dcn::Rng rng{5};
  // Redundant planes span racks, so almost all survivors stay connected.
  // The exception is real: a dual-port server whose row straddles the rack
  // boundary can have both its crossbar and its level switch placed in the
  // dead rack, orphaning it. That affects at most the handful of boundary
  // servers, never a partition.
  EXPECT_LT(PairDisconnectionFraction(net, failures, 300, rng), 0.05);
  EXPECT_GT(ServerLossFraction(net, failures), 0.15);
}

TEST(ResilienceTest, BcubeToleratesAnySingleSwitch) {
  const topo::Bcube net{topo::BcubeParams{4, 1}};
  dcn::Rng rng{6};
  EXPECT_DOUBLE_EQ(WorstSingleSwitchDisconnection(net, 100, 0, rng), 0.0);
}

TEST(ResilienceTest, SampleSwitchBoundRestrictsSweep) {
  const Abccc net{AbcccParams{4, 1, 2}};
  dcn::Rng rng{7};
  // Bounded sweep still returns a valid fraction.
  const double worst = WorstSingleSwitchDisconnection(net, 50, 3, rng);
  EXPECT_GE(worst, 0.0);
  EXPECT_LE(worst, 1.0);
}

}  // namespace
}  // namespace dcn::metrics
