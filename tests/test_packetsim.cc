#include "sim/packetsim.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "routing/abccc_routing.h"
#include "routing/multipath.h"
#include "routing/route.h"
#include "sim/traffic.h"
#include "topology/abccc.h"

namespace dcn::sim {
namespace {

using graph::Graph;
using graph::NodeKind;
using routing::Route;

Graph MakeRelayPair() {
  Graph g;
  g.AddNode(NodeKind::kServer);  // 0
  g.AddNode(NodeKind::kSwitch);  // 1
  g.AddNode(NodeKind::kServer);  // 2
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  return g;
}

TEST(PacketSimTest, LowLoadLatencyIsNearHopCount) {
  const Graph g = MakeRelayPair();
  PacketSimConfig config;
  config.offered_load = 0.05;
  config.duration = 2000;
  config.warmup = 100;
  const PacketSimResult result = RunPacketSim(g, {Route{{0, 1, 2}}}, config);
  EXPECT_GT(result.measured, 50u);
  EXPECT_EQ(result.dropped, 0u);
  EXPECT_NEAR(result.DeliveredFraction(), 1.0, 1e-9);
  // Two links at service time 1 => ~2 time units with almost no queueing.
  EXPECT_NEAR(result.latency.Mean(), 2.0, 0.3);
}

TEST(PacketSimTest, OverloadDropsPackets) {
  // Two sources feed the same output link at combined load 1.6.
  Graph g;
  g.AddNode(NodeKind::kServer);  // 0
  g.AddNode(NodeKind::kServer);  // 1
  g.AddNode(NodeKind::kSwitch);  // 2
  g.AddNode(NodeKind::kServer);  // 3
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  PacketSimConfig config;
  config.offered_load = 0.8;
  config.duration = 1500;
  config.warmup = 300;
  config.queue_capacity = 8;
  const PacketSimResult result =
      RunPacketSim(g, {Route{{0, 2, 3}}, Route{{1, 2, 3}}}, config);
  EXPECT_GT(result.dropped, 0u);
  // The shared link delivers ~1 packet/time, offered ~1.6.
  EXPECT_NEAR(result.DeliveredFraction(), 1.0 / 1.6, 0.1);
}

TEST(PacketSimTest, DeterministicGivenSeed) {
  const Graph g = MakeRelayPair();
  PacketSimConfig config;
  config.offered_load = 0.4;
  config.duration = 500;
  config.seed = 99;
  const PacketSimResult a = RunPacketSim(g, {Route{{0, 1, 2}}}, config);
  const PacketSimResult b = RunPacketSim(g, {Route{{0, 1, 2}}}, config);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_DOUBLE_EQ(a.latency.Mean(), b.latency.Mean());
}

TEST(PacketSimTest, ConservationOfMeasuredPackets) {
  const Graph g = MakeRelayPair();
  PacketSimConfig config;
  config.offered_load = 0.9;
  config.duration = 800;
  config.queue_capacity = 4;
  const PacketSimResult result = RunPacketSim(g, {Route{{0, 1, 2}}}, config);
  // Every measured packet ends as exactly one of delivered/dropped (the sim
  // drains all queues before returning).
  EXPECT_EQ(result.delivered + result.dropped, result.measured);
  EXPECT_GE(result.generated, result.measured);
}

TEST(PacketSimTest, LatencyGrowsWithLoad) {
  const topo::Abccc net{topo::AbcccParams{4, 1, 2}};
  dcn::Rng rng{5};
  const std::vector<Flow> flows = PermutationTraffic(net, rng);
  std::vector<Route> routes;
  for (const Flow& flow : flows) {
    routes.push_back(routing::AbcccRoute(net, flow.src, flow.dst));
  }
  PacketSimConfig low;
  low.offered_load = 0.05;
  low.duration = 400;
  low.warmup = 100;
  PacketSimConfig high = low;
  high.offered_load = 0.6;
  const PacketSimResult at_low = RunPacketSim(net.Network(), routes, low);
  const PacketSimResult at_high = RunPacketSim(net.Network(), routes, high);
  EXPECT_GT(at_high.latency.Mean(), at_low.latency.Mean());
  EXPECT_NEAR(at_low.DeliveredFraction(), 1.0, 0.01);
}

TEST(PacketSimTest, LinkStatisticsTrackTheBottleneck) {
  // Two sources share one output link at combined load ~1.6: the shared link
  // saturates (utilization ~1), queues fill to capacity.
  Graph g;
  g.AddNode(NodeKind::kServer);  // 0
  g.AddNode(NodeKind::kServer);  // 1
  g.AddNode(NodeKind::kSwitch);  // 2
  g.AddNode(NodeKind::kServer);  // 3
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  PacketSimConfig config;
  config.offered_load = 0.8;
  config.duration = 1000;
  config.warmup = 200;
  config.queue_capacity = 6;
  const PacketSimResult result =
      RunPacketSim(g, {Route{{0, 2, 3}}, Route{{1, 2, 3}}}, config);
  EXPECT_NEAR(result.max_link_utilization, 1.0, 0.05);
  EXPECT_EQ(result.max_queue_depth, 6);
  EXPECT_GT(result.mean_link_utilization, 0.5);
  EXPECT_LE(result.mean_link_utilization, result.max_link_utilization);
}

TEST(PacketSimTest, LowLoadUtilizationMatchesOffered) {
  const Graph g = MakeRelayPair();
  PacketSimConfig config;
  config.offered_load = 0.1;
  config.duration = 3000;
  const PacketSimResult result = RunPacketSim(g, {Route{{0, 1, 2}}}, config);
  EXPECT_NEAR(result.max_link_utilization, 0.1, 0.02);
  EXPECT_LE(result.max_queue_depth, 6);
}

TEST(PacketSimMultipathTest, RoundRobinSpreadsOverParallelPaths) {
  // One source, two disjoint 2-link paths to the sink: spraying halves the
  // per-path load, so a 1.2 offered load becomes deliverable.
  Graph g;
  g.AddNode(NodeKind::kServer);  // 0
  g.AddNode(NodeKind::kSwitch);  // 1
  g.AddNode(NodeKind::kSwitch);  // 2
  g.AddNode(NodeKind::kServer);  // 3
  g.AddEdge(0, 1);
  g.AddEdge(1, 3);
  g.AddEdge(0, 2);
  g.AddEdge(2, 3);
  PacketSimConfig config;
  config.offered_load = 1.2;
  config.duration = 1000;
  config.warmup = 200;
  const std::vector<std::vector<Route>> candidates{
      {Route{{0, 1, 3}}, Route{{0, 2, 3}}}};
  const PacketSimResult sprayed =
      RunPacketSimMultipath(g, candidates, config, SprayPolicy::kRoundRobin);
  const PacketSimResult single = RunPacketSim(g, {Route{{0, 1, 3}}}, config);
  // NOTE: the source NIC is modeled as two independent links here, so the
  // sprayed variant genuinely has 2x egress capacity.
  EXPECT_GT(sprayed.DeliveredFraction(), 0.95);
  EXPECT_LT(single.DeliveredFraction(), 0.9);
}

TEST(PacketSimMultipathTest, RandomPolicyAlsoDeliversAndDiffers) {
  Graph g;
  g.AddNode(NodeKind::kServer);
  g.AddNode(NodeKind::kSwitch);
  g.AddNode(NodeKind::kSwitch);
  g.AddNode(NodeKind::kServer);
  g.AddEdge(0, 1);
  g.AddEdge(1, 3);
  g.AddEdge(0, 2);
  g.AddEdge(2, 3);
  const std::vector<std::vector<Route>> candidates{
      {Route{{0, 1, 3}}, Route{{0, 2, 3}}}};
  PacketSimConfig config;
  config.offered_load = 0.6;
  config.duration = 800;
  const PacketSimResult rr =
      RunPacketSimMultipath(g, candidates, config, SprayPolicy::kRoundRobin);
  const PacketSimResult rnd = RunPacketSimMultipath(
      g, candidates, config, SprayPolicy::kRandomPerPacket);
  EXPECT_GT(rr.DeliveredFraction(), 0.99);
  EXPECT_GT(rnd.DeliveredFraction(), 0.95);
}

TEST(PacketSimMultipathTest, SingleRouteWrapperIsEquivalent) {
  const Graph g = MakeRelayPair();
  PacketSimConfig config;
  config.offered_load = 0.4;
  config.duration = 500;
  const PacketSimResult direct = RunPacketSim(g, {Route{{0, 1, 2}}}, config);
  const PacketSimResult via_multipath = RunPacketSimMultipath(
      g, {{Route{{0, 1, 2}}}}, config, SprayPolicy::kRandomPerPacket);
  EXPECT_EQ(direct.generated, via_multipath.generated);
  EXPECT_EQ(direct.delivered, via_multipath.delivered);
}

TEST(PacketSimMultipathTest, CandidateValidation) {
  const Graph g = MakeRelayPair();
  PacketSimConfig config;
  EXPECT_THROW(RunPacketSimMultipath(g, {{}}, config), dcn::InvalidArgument);
  // Mixed-origin candidates rejected.
  EXPECT_THROW(
      RunPacketSimMultipath(g, {{Route{{0, 1, 2}}, Route{{2, 1, 0}}}}, config),
      dcn::InvalidArgument);
}

TEST(PacketSimMultipathTest, SprayingOnAbcccRaisesDeliveredFraction) {
  const topo::Abccc net{topo::AbcccParams{4, 1, 2}};
  dcn::Rng rng{9};
  const std::vector<Flow> flows = PermutationTraffic(net, rng);
  std::vector<Route> single;
  std::vector<std::vector<Route>> sets;
  for (const Flow& flow : flows) {
    single.push_back(routing::AbcccRoute(net, flow.src, flow.dst));
    sets.push_back(routing::RotatedLevelOrderRoutes(net, flow.src, flow.dst));
  }
  PacketSimConfig config;
  config.offered_load = 0.6;
  config.duration = 500;
  config.warmup = 100;
  const PacketSimResult base = RunPacketSim(net.Network(), single, config);
  const PacketSimResult sprayed = RunPacketSimMultipath(
      net.Network(), sets, config, SprayPolicy::kRoundRobin);
  EXPECT_GE(sprayed.DeliveredFraction(), base.DeliveredFraction() - 0.02);
}

TEST(PacketSimTest, RingStoreMatchesLegacyBaselineExactly) {
  // The ring-buffer link store keeps the exact FIFO semantics of the legacy
  // vector-of-deques layout and the event queue pops the strict (time, seq)
  // total order either way — every counter and every latency sample must be
  // bit-identical, not just statistically close.
  const topo::Abccc net{topo::AbcccParams{3, 1, 2}};
  Rng rng{20260806};
  const std::vector<Flow> flows = PermutationTraffic(net, rng);
  std::vector<Route> routes;
  for (const Flow& flow : flows) {
    routes.push_back(routing::AbcccRoute(net, flow.src, flow.dst));
  }
  PacketSimConfig config;
  config.offered_load = 0.7;
  config.duration = 300;
  config.warmup = 50;
  config.queue_capacity = 4;
  const PacketSimResult ring = RunPacketSim(net.Network(), routes, config);
  const PacketSimResult legacy =
      RunPacketSimLegacyBaseline(net.Network(), routes, config);
  EXPECT_EQ(ring.generated, legacy.generated);
  EXPECT_EQ(ring.measured, legacy.measured);
  EXPECT_EQ(ring.delivered, legacy.delivered);
  EXPECT_EQ(ring.dropped, legacy.dropped);
  EXPECT_EQ(ring.max_queue_depth, legacy.max_queue_depth);
  EXPECT_EQ(ring.max_link_utilization, legacy.max_link_utilization);
  EXPECT_EQ(ring.mean_link_utilization, legacy.mean_link_utilization);
  ASSERT_EQ(ring.latency.Count(), legacy.latency.Count());
  EXPECT_EQ(ring.latency.Mean(), legacy.latency.Mean());
  EXPECT_EQ(ring.latency.Percentile(0.99), legacy.latency.Percentile(0.99));
}

TEST(PacketSimTest, ConfigValidation) {
  const Graph g = MakeRelayPair();
  PacketSimConfig config;
  config.offered_load = 0.0;
  EXPECT_THROW(RunPacketSim(g, {Route{{0, 1, 2}}}, config), dcn::InvalidArgument);
  config.offered_load = 0.5;
  config.warmup = config.duration + 1;
  EXPECT_THROW(RunPacketSim(g, {Route{{0, 1, 2}}}, config), dcn::InvalidArgument);
  PacketSimConfig ok;
  EXPECT_THROW(RunPacketSim(g, {}, ok), dcn::InvalidArgument);
  EXPECT_THROW(RunPacketSim(g, {Route{{0}}}, ok), dcn::InvalidArgument);
}

}  // namespace
}  // namespace dcn::sim
