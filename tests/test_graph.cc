#include "graph/graph.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace dcn::graph {
namespace {

Graph MakeTriangle() {
  Graph g;
  const NodeId a = g.AddNode(NodeKind::kServer);
  const NodeId b = g.AddNode(NodeKind::kServer);
  const NodeId c = g.AddNode(NodeKind::kSwitch);
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  g.AddEdge(c, a);
  return g;
}

TEST(GraphTest, NodeAndEdgeAccounting) {
  const Graph g = MakeTriangle();
  EXPECT_EQ(g.NodeCount(), 3u);
  EXPECT_EQ(g.EdgeCount(), 3u);
  EXPECT_EQ(g.ServerCount(), 2u);
  EXPECT_EQ(g.SwitchCount(), 1u);
  EXPECT_TRUE(g.IsServer(0));
  EXPECT_TRUE(g.IsSwitch(2));
  EXPECT_EQ(g.KindOf(1), NodeKind::kServer);
  ASSERT_EQ(g.Servers().size(), 2u);
  EXPECT_EQ(g.Servers()[0], 0);
  EXPECT_EQ(g.Servers()[1], 1);
}

TEST(GraphTest, AdjacencyAndDegrees) {
  const Graph g = MakeTriangle();
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(2), 2u);
  bool found = false;
  for (const HalfEdge& half : g.Neighbors(0)) {
    if (half.to == 1) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(GraphTest, EndpointsAndOtherEnd) {
  const Graph g = MakeTriangle();
  const auto [u, v] = g.Endpoints(0);
  EXPECT_EQ(u, 0);
  EXPECT_EQ(v, 1);
  EXPECT_EQ(g.OtherEnd(0, 0), 1);
  EXPECT_EQ(g.OtherEnd(0, 1), 0);
  EXPECT_THROW(g.OtherEnd(0, 2), InvalidArgument);
  EXPECT_THROW(g.Endpoints(99), InvalidArgument);
}

TEST(GraphTest, AdjacentAndFindEdge) {
  Graph g;
  const NodeId a = g.AddNode(NodeKind::kServer);
  const NodeId b = g.AddNode(NodeKind::kServer);
  const NodeId c = g.AddNode(NodeKind::kServer);
  const EdgeId ab = g.AddEdge(a, b);
  EXPECT_TRUE(g.Adjacent(a, b));
  EXPECT_TRUE(g.Adjacent(b, a));
  EXPECT_FALSE(g.Adjacent(a, c));
  EXPECT_EQ(g.FindEdge(a, b), ab);
  EXPECT_EQ(g.FindEdge(a, c), kInvalidEdge);
}

TEST(GraphTest, FindEdgeOnSkewedDegreesAgreesFromEitherSide) {
  // A hub with a large adjacency list and leaves of small degree. FindEdge
  // scans the smaller endpoint's list (O(min degree)); because adjacency
  // lists append in edge-id order, the answer is the lowest-id parallel link
  // no matter which side the scan runs on — so the argument order must not
  // change the result.
  Graph g;
  const NodeId hub = g.AddNode(NodeKind::kSwitch);
  std::vector<NodeId> leaves;
  std::vector<EdgeId> first_link;
  for (int i = 0; i < 64; ++i) {
    const NodeId leaf = g.AddNode(NodeKind::kServer);
    leaves.push_back(leaf);
    first_link.push_back(g.AddEdge(hub, leaf));
  }
  // Parallel links added later get higher edge ids and must never win.
  for (const NodeId leaf : leaves) g.AddEdge(leaf, hub);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    EXPECT_EQ(g.FindEdge(hub, leaves[i]), first_link[i]);
    EXPECT_EQ(g.FindEdge(leaves[i], hub), first_link[i]);
    EXPECT_TRUE(g.Adjacent(hub, leaves[i]));
    EXPECT_TRUE(g.Adjacent(leaves[i], hub));
  }
  EXPECT_EQ(g.FindEdge(leaves[0], leaves[1]), kInvalidEdge);
}

TEST(GraphTest, SelfLoopRejected) {
  Graph g;
  const NodeId a = g.AddNode(NodeKind::kServer);
  EXPECT_THROW(g.AddEdge(a, a), InvalidArgument);
}

TEST(GraphTest, ParallelEdgesAllowed) {
  Graph g;
  const NodeId a = g.AddNode(NodeKind::kServer);
  const NodeId b = g.AddNode(NodeKind::kServer);
  g.AddEdge(a, b);
  g.AddEdge(a, b);
  EXPECT_EQ(g.EdgeCount(), 2u);
  EXPECT_EQ(g.Degree(a), 2u);
}

TEST(GraphTest, OutOfRangeChecks) {
  Graph g;
  g.AddNode(NodeKind::kServer);
  EXPECT_THROW(g.KindOf(-1), InvalidArgument);
  EXPECT_THROW(g.KindOf(5), InvalidArgument);
  EXPECT_THROW(g.Neighbors(5), InvalidArgument);
  EXPECT_THROW(g.AddEdge(0, 5), InvalidArgument);
}

TEST(FailureSetTest, KillAndRevive) {
  const Graph g = MakeTriangle();
  FailureSet failures{g};
  EXPECT_FALSE(failures.NodeDead(0));
  failures.KillNode(0);
  failures.KillEdge(1);
  EXPECT_TRUE(failures.NodeDead(0));
  EXPECT_TRUE(failures.EdgeDead(1));
  EXPECT_EQ(failures.DeadNodeCount(), 1u);
  EXPECT_EQ(failures.DeadEdgeCount(), 1u);
  failures.ReviveNode(0);
  failures.ReviveEdge(1);
  EXPECT_FALSE(failures.NodeDead(0));
  EXPECT_FALSE(failures.EdgeDead(1));
}

TEST(FailureSetTest, HalfEdgeUsableRespectsBothFailureKinds) {
  const Graph g = MakeTriangle();
  FailureSet failures{g};
  const HalfEdge half = g.Neighbors(0)[0];  // 0 -> 1 via edge 0
  EXPECT_TRUE(failures.HalfEdgeUsable(half));
  failures.KillEdge(half.edge);
  EXPECT_FALSE(failures.HalfEdgeUsable(half));
  failures.ReviveEdge(half.edge);
  failures.KillNode(half.to);
  EXPECT_FALSE(failures.HalfEdgeUsable(half));
}

TEST(FailureSetTest, DefaultConstructedReportsNothingDead) {
  FailureSet failures;
  EXPECT_FALSE(failures.NodeDead(0));
  EXPECT_FALSE(failures.EdgeDead(0));
}

TEST(FailureSetTest, OutOfRangeKillThrows) {
  const Graph g = MakeTriangle();
  FailureSet failures{g};
  EXPECT_THROW(failures.KillNode(99), InvalidArgument);
  EXPECT_THROW(failures.KillEdge(99), InvalidArgument);
}

}  // namespace
}  // namespace dcn::graph
