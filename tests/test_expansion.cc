#include "topology/expansion.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/error.h"

namespace dcn::topo {
namespace {

TEST(ExpansionPlanTest, AbcccCountsMatchBuiltNetworks) {
  const AbcccParams from{4, 1, 2};
  const ExpansionStep step = PlanAbcccExpansion(from);
  const Abccc before{from};
  const Abccc after{AbcccParams{4, 2, 2}};
  EXPECT_EQ(step.servers_before, before.ServerCount());
  EXPECT_EQ(step.servers_after, after.ServerCount());
  EXPECT_EQ(step.switches_before, before.SwitchCount());
  EXPECT_EQ(step.switches_after, after.SwitchCount());
  EXPECT_EQ(step.links_before, before.LinkCount());
  EXPECT_EQ(step.links_after, after.LinkCount());
  EXPECT_GT(step.ServersAdded(), 0u);
  EXPECT_GT(step.LinksAdded(), 0u);
}

TEST(ExpansionPlanTest, AbcccIsZeroDisruption) {
  for (int c : {2, 3, 4}) {
    const ExpansionStep step = PlanAbcccExpansion(AbcccParams{4, 2, c});
    EXPECT_EQ(step.DisruptionTotal(), 0u) << "c=" << c;
    EXPECT_EQ(step.existing_servers_modified, 0u);
    EXPECT_EQ(step.existing_switches_replaced, 0u);
    EXPECT_EQ(step.existing_links_recabled, 0u);
  }
}

TEST(ExpansionPlanTest, AbcccCrossbarPortsConsumedWhenRowGrows) {
  // c=2: the row grows every step, consuming one crossbar port per old row.
  const AbcccParams p2{4, 1, 2};
  EXPECT_EQ(PlanAbcccExpansion(p2).crossbar_ports_consumed, p2.RowCount());
  // c=4, k=1 -> m = ceil(2/3) = 1; k=2 -> m = 1: no row growth.
  EXPECT_EQ(PlanAbcccExpansion(AbcccParams{4, 1, 4}).crossbar_ports_consumed, 0u);
}

TEST(ExpansionPlanTest, BcubeDisruptsEveryServer) {
  const BcubeParams from{4, 2};
  const ExpansionStep step = PlanBcubeExpansion(from);
  EXPECT_EQ(step.existing_servers_modified, from.ServerTotal());
  EXPECT_EQ(step.DisruptionTotal(), from.ServerTotal());
  const BcubeParams expanded{4, 3};
  EXPECT_EQ(step.servers_after, expanded.ServerTotal());
}

TEST(ExpansionPlanTest, DcellDisruptsEveryServer) {
  const DcellParams from{4, 1};
  const ExpansionStep step = PlanDcellExpansion(from);
  EXPECT_EQ(step.existing_servers_modified, from.ServerTotal());
  const DcellParams expanded{4, 2};
  EXPECT_EQ(step.servers_after, expanded.ServerTotal());
}

TEST(ExpansionPlanTest, FatTreeReplacesTheFabric) {
  const FatTreeParams from{4};
  const ExpansionStep step = PlanFatTreeExpansion(from);
  EXPECT_EQ(step.existing_switches_replaced, from.SwitchTotal());
  EXPECT_EQ(step.existing_links_recabled, from.LinkTotal());
  EXPECT_EQ(step.servers_after, FatTreeParams{6}.ServerTotal());
  EXPECT_GT(step.DisruptionTotal(), 0u);
}

class AbcccEmbeddingSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(AbcccEmbeddingSweep, OldNetworkEmbedsInExpanded) {
  const auto [n, k, c] = GetParam();
  const Abccc before{AbcccParams{n, k, c}};
  const Abccc after{AbcccParams{n, k + 1, c}};
  EXPECT_TRUE(VerifyAbcccExpansion(before, after));
}

INSTANTIATE_TEST_SUITE_P(Sweep, AbcccEmbeddingSweep,
                         ::testing::Values(std::tuple{2, 0, 2}, std::tuple{2, 1, 2},
                                           std::tuple{3, 1, 2}, std::tuple{3, 1, 3},
                                           std::tuple{4, 1, 2}, std::tuple{4, 1, 3},
                                           std::tuple{4, 2, 3}, std::tuple{5, 1, 4},
                                           std::tuple{2, 2, 3}));

TEST(ExpansionVerifyTest, RejectsMismatchedParameters) {
  const Abccc a{AbcccParams{4, 1, 2}};
  const Abccc b{AbcccParams{4, 3, 2}};  // k jumps by 2
  EXPECT_FALSE(VerifyAbcccExpansion(a, b));
  const Abccc c{AbcccParams{3, 2, 2}};  // different n
  EXPECT_FALSE(VerifyAbcccExpansion(a, c));
  const Abccc d{AbcccParams{4, 2, 3}};  // different c
  EXPECT_FALSE(VerifyAbcccExpansion(a, d));
}

TEST(ExpansionPlanTest, InvalidParamsThrow) {
  EXPECT_THROW(PlanAbcccExpansion(AbcccParams{1, 1, 2}), dcn::InvalidArgument);
  EXPECT_THROW(PlanBcubeExpansion(BcubeParams{0, 1}), dcn::InvalidArgument);
  EXPECT_THROW(PlanDcellExpansion(DcellParams{4, 4}), dcn::InvalidArgument);
  EXPECT_THROW(PlanFatTreeExpansion(FatTreeParams{3}), dcn::InvalidArgument);
}

TEST(ExpansionPlanTest, StepDescriptionsNameBothConfigurations) {
  const ExpansionStep step = PlanAbcccExpansion(AbcccParams{4, 1, 3});
  EXPECT_EQ(step.from, "ABCCC(n=4,k=1,c=3)");
  EXPECT_EQ(step.to, "ABCCC(n=4,k=2,c=3)");
  EXPECT_EQ(step.topology, "ABCCC");
}

}  // namespace
}  // namespace dcn::topo
