// Determinism contract of the parallel metrics layer: for every fixture
// topology, every parallelized measurement must be BIT-identical at 1, 2,
// and 7 threads (7 is deliberately odd and larger than most chunk counts'
// divisors, which flushes out chunk-boundary bugs that powers of two hide).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "metrics/bisection.h"
#include "metrics/path_metrics.h"
#include "metrics/resilience.h"
#include "sim/flowsim.h"
#include "sim/traffic.h"
#include "topology/factory.h"

namespace dcn {
namespace {

constexpr int kThreadCounts[] = {1, 2, 7};
constexpr std::uint64_t kSeed = 0xabccc2015u;

class ParallelDeterminism : public ::testing::TestWithParam<const char*> {
 protected:
  void TearDown() override { SetThreadCount(0); }

  std::unique_ptr<topo::Topology> Net() const {
    return topo::MakeTopology(GetParam());
  }

  // Runs `measure` under each thread count and asserts all results compare
  // equal to the serial one via `same`.
  template <typename Fn, typename Eq>
  void ExpectInvariant(Fn measure, Eq same) {
    SetThreadCount(1);
    const auto serial = measure();
    for (int threads : {2, 7}) {
      SetThreadCount(threads);
      const auto parallel = measure();
      same(serial, parallel, threads);
    }
  }
};

TEST_P(ParallelDeterminism, ExactServerPathStats) {
  const auto net = Net();
  ExpectInvariant(
      [&] { return metrics::ExactServerPathStats(*net); },
      [](const metrics::ExactPathStats& a, const metrics::ExactPathStats& b,
         int threads) {
        EXPECT_EQ(a.diameter, b.diameter) << "threads=" << threads;
        // Bit-identical, not just close: same chunks, same merge order.
        EXPECT_EQ(a.average, b.average) << "threads=" << threads;
        EXPECT_EQ(a.pairs, b.pairs) << "threads=" << threads;
        EXPECT_EQ(a.connected, b.connected) << "threads=" << threads;
      });
}

TEST_P(ParallelDeterminism, SampledPathStats) {
  const auto net = Net();
  ExpectInvariant(
      [&] {
        Rng rng{kSeed};  // fresh stream per thread count
        return metrics::SamplePathStats(*net, 6, 12, rng);
      },
      [](const metrics::SampledPathStats& a, const metrics::SampledPathStats& b,
         int threads) {
        EXPECT_EQ(a.shortest.Buckets(), b.shortest.Buckets())
            << "threads=" << threads;
        EXPECT_EQ(a.routed.Buckets(), b.routed.Buckets())
            << "threads=" << threads;
        EXPECT_EQ(a.mean_stretch, b.mean_stretch) << "threads=" << threads;
        EXPECT_EQ(a.diameter_lower_bound, b.diameter_lower_bound)
            << "threads=" << threads;
      });
}

TEST_P(ParallelDeterminism, SampledPairCuts) {
  const auto net = Net();
  ExpectInvariant(
      [&] {
        Rng rng{kSeed + 1};
        return metrics::SampledPairCuts(*net, 10, rng);
      },
      [](const metrics::PairCutStats& a, const metrics::PairCutStats& b,
         int threads) {
        EXPECT_EQ(a.cuts.Buckets(), b.cuts.Buckets()) << "threads=" << threads;
        EXPECT_EQ(a.min_cut, b.min_cut) << "threads=" << threads;
        EXPECT_EQ(a.mean_cut, b.mean_cut) << "threads=" << threads;
      });
}

TEST_P(ParallelDeterminism, ResilienceTrials) {
  const auto net = Net();
  ExpectInvariant(
      [&] {
        Rng rng{kSeed + 2};
        graph::FailureSet failures{net->Network()};
        failures.KillNode(net->Servers()[0]);
        const double pair_fraction =
            metrics::PairDisconnectionFraction(*net, failures, 64, rng);
        const double worst =
            metrics::WorstSingleSwitchDisconnection(*net, 32, 5, rng);
        return std::pair{pair_fraction, worst};
      },
      [](const std::pair<double, double>& a, const std::pair<double, double>& b,
         int threads) {
        EXPECT_EQ(a.first, b.first) << "threads=" << threads;
        EXPECT_EQ(a.second, b.second) << "threads=" << threads;
      });
}

TEST_P(ParallelDeterminism, NativeRoutesAndFairRates) {
  const auto net = Net();
  ExpectInvariant(
      [&] {
        Rng rng{kSeed + 3};
        const std::vector<sim::Flow> flows = sim::PermutationTraffic(*net, rng);
        const std::vector<routing::Route> routes = sim::NativeRoutes(*net, flows);
        const sim::FlowSimResult rates =
            sim::MaxMinFairRates(net->Network(), routes);
        return std::pair{routes, rates.aggregate};
      },
      [](const auto& a, const auto& b, int threads) {
        ASSERT_EQ(a.first.size(), b.first.size()) << "threads=" << threads;
        for (std::size_t f = 0; f < a.first.size(); ++f) {
          ASSERT_EQ(a.first[f].hops, b.first[f].hops)
              << "flow " << f << " threads=" << threads;
        }
        EXPECT_EQ(a.second, b.second) << "threads=" << threads;
      });
}

INSTANTIATE_TEST_SUITE_P(Fixtures, ParallelDeterminism,
                         ::testing::Values("abccc:n=3,k=2,c=2",
                                           "bcube:n=3,k=1",
                                           "dcell:n=3,k=1",
                                           "fattree:k=4"));

// --- Rng::Fork(index) stream contract -------------------------------------

TEST(RngForkStreams, IndexForkDoesNotAdvanceParent) {
  Rng parent{99};
  Rng probe{99};
  (void)parent.Fork(0);
  (void)parent.Fork(17);
  // The parent's own stream is untouched by indexed forks.
  EXPECT_EQ(parent(), probe());
}

TEST(RngForkStreams, IndexForkIsAPureFunctionOfStateAndIndex) {
  const Rng parent{123};
  Rng a = parent.Fork(5);
  Rng b = parent.Fork(5);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a(), b());
}

TEST(RngForkStreams, DistinctIndicesGiveIndependentStreams) {
  const Rng parent{7};
  // First outputs of 1000 sibling streams should essentially never collide.
  std::set<std::uint64_t> first_outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    Rng stream = parent.Fork(i);
    first_outputs.insert(stream());
  }
  EXPECT_EQ(first_outputs.size(), 1000u);

  // And adjacent streams must not be shifted copies of each other.
  Rng s0 = parent.Fork(0);
  Rng s1 = parent.Fork(1);
  (void)s1();  // offset by one draw
  int matches = 0;
  for (int i = 0; i < 64; ++i) {
    if (s0() == s1()) ++matches;
  }
  EXPECT_LT(matches, 4);
}

TEST(RngForkStreams, IndexedAndMutatingForksCoexist) {
  Rng parent{2024};
  const Rng snapshot = parent;
  Rng mutating = parent.Fork();       // advances parent
  Rng indexed = snapshot.Fork(0);     // does not
  // The two derivation paths give different streams (no accidental aliasing).
  int matches = 0;
  for (int i = 0; i < 64; ++i) {
    if (mutating() == indexed()) ++matches;
  }
  EXPECT_LT(matches, 4);
}

}  // namespace
}  // namespace dcn
