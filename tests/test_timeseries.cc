// obs/timeseries.h: fixed-width bucketization edge cases (boundary events,
// runs shorter than one bucket, final partial buckets, negative-time clamp)
// and the determinism contract — merged buckets bit-identical at any thread
// count, in registration order.
#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/parallel.h"
#include "obs/obs.h"

namespace dcn::obs {
namespace {

// Reset() clears the whole time-series registry (names and data), so every
// test starts from an empty one. Handles must be re-acquired per test.
class TimeSeriesTest : public ::testing::Test {
 protected:
  void SetUp() override { Reset(); }
  void TearDown() override {
    Reset();
    SetThreadCount(0);
  }
};

const TimeSeriesRow& RowNamed(const std::vector<TimeSeriesRow>& rows,
                              const std::string& name) {
  for (const TimeSeriesRow& row : rows) {
    if (row.name == name) return row;
  }
  ADD_FAILURE() << "no series named " << name;
  static const TimeSeriesRow kEmpty;
  return kEmpty;
}

TEST_F(TimeSeriesTest, BoundaryEventLandsInTheUpperBucket) {
  TimeSeries& series = GetTimeSeries("ts/boundary", SeriesKind::kSum, 10.0);
  series.Record(0.0, 1);    // bucket 0: [0, 10)
  series.Record(9.999, 2);  // still bucket 0
  series.Record(10.0, 4);   // exactly on the boundary -> bucket 1
  series.Record(19.999, 8);
  const TimeSeriesRow row =
      RowNamed(TakeTimeSeriesSnapshot(), "ts/boundary");
  ASSERT_EQ(row.buckets.size(), 2u);
  EXPECT_EQ(row.buckets[0], 3);
  EXPECT_EQ(row.buckets[1], 12);
}

TEST_F(TimeSeriesTest, RunShorterThanOneBucketYieldsOnePartialBucket) {
  TimeSeries& series = GetTimeSeries("ts/short", SeriesKind::kSum, 100.0);
  series.Record(1.0, 1);
  series.Record(42.5, 1);
  series.Record(99.0, 1);
  const TimeSeriesRow row = RowNamed(TakeTimeSeriesSnapshot(), "ts/short");
  ASSERT_EQ(row.buckets.size(), 1u);
  EXPECT_EQ(row.buckets[0], 3);
}

TEST_F(TimeSeriesTest, FinalPartialBucketIsKeptAndInteriorGapsReadZero) {
  TimeSeries& series = GetTimeSeries("ts/partial", SeriesKind::kSum, 10.0);
  series.Record(5.0, 7);
  series.Record(25.0, 9);  // horizon 25: final bucket [20, 30) is partial
  const TimeSeriesRow row = RowNamed(TakeTimeSeriesSnapshot(), "ts/partial");
  ASSERT_EQ(row.buckets.size(), 3u);
  EXPECT_EQ(row.buckets[0], 7);
  EXPECT_EQ(row.buckets[1], 0);  // untouched interior bucket
  EXPECT_EQ(row.buckets[2], 9);
}

TEST_F(TimeSeriesTest, NegativeTimeClampsToBucketZero) {
  TimeSeries& series = GetTimeSeries("ts/neg", SeriesKind::kSum, 10.0);
  series.Record(-3.0, 5);
  const TimeSeriesRow row = RowNamed(TakeTimeSeriesSnapshot(), "ts/neg");
  ASSERT_EQ(row.buckets.size(), 1u);
  EXPECT_EQ(row.buckets[0], 5);
}

TEST_F(TimeSeriesTest, MaxSeriesKeepsTheBucketMaximum) {
  TimeSeries& series = GetTimeSeries("ts/max", SeriesKind::kMax, 10.0);
  series.Record(1.0, 3);
  series.Record(2.0, 9);
  series.Record(3.0, 4);
  series.Record(11.0, 2);
  const TimeSeriesRow row = RowNamed(TakeTimeSeriesSnapshot(), "ts/max");
  ASSERT_EQ(row.buckets.size(), 2u);
  EXPECT_EQ(row.buckets[0], 9);
  EXPECT_EQ(row.buckets[1], 2);
}

TEST_F(TimeSeriesTest, ReRegistrationMustMatchKindAndWidth) {
  GetTimeSeries("ts/re", SeriesKind::kSum, 10.0);
  EXPECT_NO_THROW(GetTimeSeries("ts/re", SeriesKind::kSum, 10.0));
  EXPECT_THROW(GetTimeSeries("ts/re", SeriesKind::kMax, 10.0),
               InvalidArgument);
  EXPECT_THROW(GetTimeSeries("ts/re", SeriesKind::kSum, 20.0),
               InvalidArgument);
  EXPECT_THROW(GetTimeSeries("ts/bad", SeriesKind::kSum, 0.0),
               InvalidArgument);
}

TEST_F(TimeSeriesTest, SnapshotIsInRegistrationOrder) {
  GetTimeSeries("ts/z_first", SeriesKind::kSum, 1.0).Record(0.0, 1);
  GetTimeSeries("ts/a_second", SeriesKind::kSum, 1.0).Record(0.0, 1);
  const std::vector<TimeSeriesRow> rows = TakeTimeSeriesSnapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "ts/z_first");
  EXPECT_EQ(rows[1].name, "ts/a_second");
}

TEST_F(TimeSeriesTest, MergedBucketsAreThreadCountInvariant) {
  std::vector<std::int64_t> sum_at_1;
  std::vector<std::int64_t> max_at_1;
  for (const int threads : {1, 3, 7}) {
    SetThreadCount(threads);
    Reset();
    TimeSeries& sums = GetTimeSeries("ts/psum", SeriesKind::kSum, 10.0);
    TimeSeries& maxes = GetTimeSeries("ts/pmax", SeriesKind::kMax, 10.0);
    ParallelFor(500, 7, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const double t = static_cast<double>(i) * 0.5;
        sums.Record(t, static_cast<std::int64_t>(i % 5));
        maxes.Record(t, static_cast<std::int64_t>(i % 17));
      }
    });
    const std::vector<TimeSeriesRow> rows = TakeTimeSeriesSnapshot();
    const TimeSeriesRow& sum_row = RowNamed(rows, "ts/psum");
    const TimeSeriesRow& max_row = RowNamed(rows, "ts/pmax");
    ASSERT_EQ(sum_row.buckets.size(), 25u) << "threads=" << threads;
    if (threads == 1) {
      sum_at_1 = sum_row.buckets;
      max_at_1 = max_row.buckets;
      continue;
    }
    EXPECT_EQ(sum_row.buckets, sum_at_1) << "threads=" << threads;
    EXPECT_EQ(max_row.buckets, max_at_1) << "threads=" << threads;
  }
}

TEST_F(TimeSeriesTest, ResetClearsNamesAndData) {
  GetTimeSeries("ts/cleared", SeriesKind::kSum, 1.0).Record(0.0, 1);
  Reset();
  EXPECT_TRUE(TakeTimeSeriesSnapshot().empty());
  // The name is registrable again with a different shape after Reset.
  EXPECT_NO_THROW(GetTimeSeries("ts/cleared", SeriesKind::kMax, 2.0));
}

TEST_F(TimeSeriesTest, CsvAndJsonExports) {
  GetTimeSeries("ts/csv", SeriesKind::kSum, 10.0).Record(15.0, 4);
  GetTimeSeries("ts/empty", SeriesKind::kSum, 10.0);  // no data: skipped
  const std::vector<TimeSeriesRow> rows = TakeTimeSeriesSnapshot();

  std::ostringstream csv;
  WriteTimeSeriesCsv(csv, rows);
  EXPECT_EQ(csv.str(),
            "series,kind,bucket_width,bucket,t_start,value\n"
            "ts/csv,sum,10,0,0,0\n"
            "ts/csv,sum,10,1,10,4\n");

  std::ostringstream json;
  WriteTimeSeriesJson(json, rows);
  EXPECT_NE(json.str().find("\"name\": \"ts/csv\""), std::string::npos);
  EXPECT_NE(json.str().find("\"buckets\": [0, 4]"), std::string::npos);
  EXPECT_EQ(json.str().find("ts/empty"), std::string::npos);
}

}  // namespace
}  // namespace dcn::obs
