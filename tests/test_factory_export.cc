#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "topology/abccc.h"
#include "topology/export.h"
#include "topology/factory.h"

namespace dcn::topo {
namespace {

TEST(FactoryTest, BuildsEveryFamily) {
  for (const std::string& spec : SupportedSpecs()) {
    const std::unique_ptr<Topology> net = MakeTopology(spec);
    ASSERT_NE(net, nullptr) << spec;
    EXPECT_GT(net->ServerCount(), 0u) << spec;
  }
}

TEST(FactoryTest, ParametersReachTheTopology) {
  const std::unique_ptr<Topology> net = MakeTopology("abccc:n=5,k=2,c=3");
  EXPECT_EQ(net->Describe(), "ABCCC(n=5,k=2,c=3)");
  const auto* abccc = dynamic_cast<const Abccc*>(net.get());
  ASSERT_NE(abccc, nullptr);
  EXPECT_EQ(abccc->Params().n, 5);
  EXPECT_EQ(abccc->Params().k, 2);
  EXPECT_EQ(abccc->Params().c, 3);
}

TEST(FactoryTest, KeyOrderDoesNotMatter) {
  const auto a = MakeTopology("abccc:c=2,n=4,k=1");
  const auto b = MakeTopology("abccc:n=4,k=1,c=2");
  EXPECT_EQ(a->Describe(), b->Describe());
}

TEST(FactoryTest, GabcccSpecParsesDottedRadices) {
  const auto net = MakeTopology("gabccc:radices=4.3.2,c=2");
  // Dotted spec is big-endian a_k..a_0; Describe prints the same order.
  EXPECT_EQ(net->Describe(), "GeneralABCCC(radices=[4,3,2],c=2)");
  EXPECT_EQ(net->ServerCount(), 24u * 3u);
  EXPECT_THROW(MakeTopology("gabccc:radices=4.x.2,c=2"), dcn::InvalidArgument);
  EXPECT_THROW(MakeTopology("gabccc:radices=4.1,c=2"), dcn::InvalidArgument);
  EXPECT_THROW(MakeTopology("gabccc:c=2"), dcn::InvalidArgument);
}

TEST(FactoryTest, BcccSpecYieldsBcccName) {
  EXPECT_EQ(MakeTopology("bccc:n=4,k=1")->Name(), "BCCC");
  EXPECT_EQ(MakeTopology("fattree:k=4")->Name(), "FatTree");
}

TEST(FactoryTest, ErrorsNameTheProblem) {
  try {
    MakeTopology("torus:n=4");
    FAIL() << "expected InvalidArgument";
  } catch (const dcn::InvalidArgument& e) {
    EXPECT_NE(std::string{e.what()}.find("unknown family"), std::string::npos);
  }
  try {
    MakeTopology("abccc:n=4,k=1");
    FAIL() << "expected InvalidArgument";
  } catch (const dcn::InvalidArgument& e) {
    EXPECT_NE(std::string{e.what()}.find("missing required key 'c'"),
              std::string::npos);
  }
  try {
    MakeTopology("bcube:n=4,k=1,c=2");
    FAIL() << "expected InvalidArgument";
  } catch (const dcn::InvalidArgument& e) {
    EXPECT_NE(std::string{e.what()}.find("unknown key 'c'"), std::string::npos);
  }
  EXPECT_THROW(MakeTopology("no-colon"), dcn::InvalidArgument);
  EXPECT_THROW(MakeTopology("abccc:n=x"), dcn::InvalidArgument);
  EXPECT_THROW(MakeTopology("abccc:n"), dcn::InvalidArgument);
  // Invalid parameter values propagate the topology's own validation.
  EXPECT_THROW(MakeTopology("abccc:n=1,k=1,c=2"), dcn::InvalidArgument);
  EXPECT_THROW(MakeTopology("fattree:k=3"), dcn::InvalidArgument);
}

TEST(ExportTest, DotContainsAllNodesAndEdges) {
  const Abccc net{AbcccParams{2, 0, 2}};  // 2 servers, 1 switch, 2 links
  const std::string dot = ToDotString(net);
  EXPECT_NE(dot.find("graph \"ABCCC(n=2,k=0,c=2)\""), std::string::npos);
  EXPECT_NE(dot.find("n0 [shape=box"), std::string::npos);
  EXPECT_NE(dot.find("n2 [shape=ellipse"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n2"), std::string::npos);
  EXPECT_NE(dot.find("n1 -- n2"), std::string::npos);
  // Labels carry addresses.
  EXPECT_NE(dot.find("label=\"<0;0>\""), std::string::npos);
}

TEST(ExportTest, FailuresRenderedDashedRed) {
  const Abccc net{AbcccParams{2, 0, 2}};
  graph::FailureSet failures{net.Network()};
  failures.KillNode(0);
  failures.KillEdge(1);
  ExportOptions options;
  options.failures = &failures;
  const std::string dot = ToDotString(net, options);
  EXPECT_NE(dot.find("style=dashed, color=red];"), std::string::npos);
  EXPECT_NE(dot.find("[style=dashed, color=red];"), std::string::npos);
}

TEST(ExportTest, LabelsCanBeDisabled) {
  const Abccc net{AbcccParams{2, 0, 2}};
  ExportOptions options;
  options.labels = false;
  const std::string dot = ToDotString(net, options);
  EXPECT_EQ(dot.find("label="), std::string::npos);
}

TEST(ExportTest, CsvListsEveryLinkWithLiveness) {
  const Abccc net{AbcccParams{2, 0, 2}};
  graph::FailureSet failures{net.Network()};
  failures.KillEdge(0);
  ExportOptions options;
  options.failures = &failures;
  std::ostringstream out;
  WriteEdgeCsv(out, net, options);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("edge_id,node_u,label_u,node_v,label_v,alive"),
            std::string::npos);
  EXPECT_NE(csv.find("0,0,<0;0>,2,S0(*),0"), std::string::npos);
  EXPECT_NE(csv.find("1,1,<1;0>,2,S0(*),1"), std::string::npos);
}

}  // namespace
}  // namespace dcn::topo
