#include "graph/paths.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>

#include "common/error.h"
#include "graph/bfs.h"

namespace dcn::graph {
namespace {

// Checks that each path is a real src..dst walk and that no link is shared.
void CheckDisjointPaths(const Graph& g, NodeId src, NodeId dst,
                        const std::vector<std::vector<NodeId>>& paths) {
  std::set<std::pair<NodeId, NodeId>> used;  // normalized endpoints
  for (const auto& path : paths) {
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(path.front(), src);
    EXPECT_EQ(path.back(), dst);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      ASSERT_TRUE(g.Adjacent(path[i], path[i + 1]))
          << path[i] << " -> " << path[i + 1];
      auto key = std::minmax(path[i], path[i + 1]);
      // No parallel edges in these fixtures, so endpoint pairs identify links.
      EXPECT_TRUE(used.insert({key.first, key.second}).second)
          << "link reused: " << key.first << "-" << key.second;
    }
  }
}

TEST(DisjointPathsTest, CycleHasTwo) {
  Graph g;
  for (int i = 0; i < 6; ++i) g.AddNode(NodeKind::kServer);
  for (int i = 0; i < 6; ++i) g.AddEdge(i, (i + 1) % 6);
  const auto paths = EdgeDisjointPaths(g, 0, 3);
  EXPECT_EQ(paths.size(), 2u);
  CheckDisjointPaths(g, 0, 3, paths);
  EXPECT_EQ(EdgeConnectivity(g, 0, 3), 2u);
}

TEST(DisjointPathsTest, BridgeHasOne) {
  Graph g;
  for (int i = 0; i < 4; ++i) g.AddNode(NodeKind::kServer);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  g.AddEdge(3, 2);
  // 0 -> 2 must pass the 0-1 bridge.
  EXPECT_EQ(EdgeConnectivity(g, 0, 2), 1u);
  CheckDisjointPaths(g, 0, 2, EdgeDisjointPaths(g, 0, 2));
}

TEST(DisjointPathsTest, CompleteGraphK5) {
  Graph g;
  for (int i = 0; i < 5; ++i) g.AddNode(NodeKind::kServer);
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) g.AddEdge(i, j);
  }
  EXPECT_EQ(EdgeConnectivity(g, 0, 4), 4u);
  const auto paths = EdgeDisjointPaths(g, 0, 4);
  EXPECT_EQ(paths.size(), 4u);
  CheckDisjointPaths(g, 0, 4, paths);
}

TEST(DisjointPathsTest, MaxPathsLimitsSearch) {
  Graph g;
  for (int i = 0; i < 5; ++i) g.AddNode(NodeKind::kServer);
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) g.AddEdge(i, j);
  }
  const auto paths = EdgeDisjointPaths(g, 0, 4, 2);
  EXPECT_EQ(paths.size(), 2u);
  CheckDisjointPaths(g, 0, 4, paths);
}

TEST(DisjointPathsTest, UnreachableGivesEmpty) {
  Graph g;
  g.AddNode(NodeKind::kServer);
  g.AddNode(NodeKind::kServer);
  EXPECT_TRUE(EdgeDisjointPaths(g, 0, 1).empty());
  EXPECT_EQ(EdgeConnectivity(g, 0, 1), 0u);
}

TEST(DisjointPathsTest, FailuresRemoveCapacity) {
  Graph g;
  for (int i = 0; i < 4; ++i) g.AddNode(NodeKind::kServer);
  const EdgeId direct = g.AddEdge(0, 3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 3);
  g.AddEdge(0, 2);
  g.AddEdge(2, 3);
  EXPECT_EQ(EdgeConnectivity(g, 0, 3), 3u);
  FailureSet failures{g};
  failures.KillEdge(direct);
  EXPECT_EQ(EdgeConnectivity(g, 0, 3, &failures), 2u);
  failures.KillNode(1);
  EXPECT_EQ(EdgeConnectivity(g, 0, 3, &failures), 1u);
  failures.KillNode(0);
  EXPECT_EQ(EdgeConnectivity(g, 0, 3, &failures), 0u);
  EXPECT_TRUE(EdgeDisjointPaths(g, 0, 3, 10, &failures).empty());
}

TEST(DisjointPathsTest, SameEndpointsThrow) {
  Graph g;
  g.AddNode(NodeKind::kServer);
  EXPECT_THROW(EdgeDisjointPaths(g, 0, 0), InvalidArgument);
  EXPECT_THROW(EdgeConnectivity(g, 0, 0), InvalidArgument);
}

TEST(DisjointPathsTest, AntiparallelFlowIsCancelled) {
  // Diamond with a crossing middle edge; flow decomposition must still
  // produce simple-link paths.
  Graph g;
  for (int i = 0; i < 6; ++i) g.AddNode(NodeKind::kServer);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 4);
  g.AddEdge(1, 4);
  g.AddEdge(2, 3);
  g.AddEdge(3, 5);
  g.AddEdge(4, 5);
  const auto paths = EdgeDisjointPaths(g, 0, 5);
  EXPECT_EQ(paths.size(), 2u);
  CheckDisjointPaths(g, 0, 5, paths);
}

}  // namespace
}  // namespace dcn::graph
