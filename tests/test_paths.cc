#include "graph/paths.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>

#include "common/error.h"
#include "common/rng.h"
#include "graph/bfs.h"

namespace dcn::graph {
namespace {

// Checks that each path is a real src..dst walk and that no link is shared.
void CheckDisjointPaths(const Graph& g, NodeId src, NodeId dst,
                        const std::vector<std::vector<NodeId>>& paths) {
  std::set<std::pair<NodeId, NodeId>> used;  // normalized endpoints
  for (const auto& path : paths) {
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(path.front(), src);
    EXPECT_EQ(path.back(), dst);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      ASSERT_TRUE(g.Adjacent(path[i], path[i + 1]))
          << path[i] << " -> " << path[i + 1];
      auto key = std::minmax(path[i], path[i + 1]);
      // No parallel edges in these fixtures, so endpoint pairs identify links.
      EXPECT_TRUE(used.insert({key.first, key.second}).second)
          << "link reused: " << key.first << "-" << key.second;
    }
  }
}

TEST(DisjointPathsTest, CycleHasTwo) {
  Graph g;
  for (int i = 0; i < 6; ++i) g.AddNode(NodeKind::kServer);
  for (int i = 0; i < 6; ++i) g.AddEdge(i, (i + 1) % 6);
  const auto paths = EdgeDisjointPaths(g, 0, 3);
  EXPECT_EQ(paths.size(), 2u);
  CheckDisjointPaths(g, 0, 3, paths);
  EXPECT_EQ(EdgeConnectivity(g, 0, 3), 2u);
}

TEST(DisjointPathsTest, BridgeHasOne) {
  Graph g;
  for (int i = 0; i < 4; ++i) g.AddNode(NodeKind::kServer);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  g.AddEdge(3, 2);
  // 0 -> 2 must pass the 0-1 bridge.
  EXPECT_EQ(EdgeConnectivity(g, 0, 2), 1u);
  CheckDisjointPaths(g, 0, 2, EdgeDisjointPaths(g, 0, 2));
}

TEST(DisjointPathsTest, CompleteGraphK5) {
  Graph g;
  for (int i = 0; i < 5; ++i) g.AddNode(NodeKind::kServer);
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) g.AddEdge(i, j);
  }
  EXPECT_EQ(EdgeConnectivity(g, 0, 4), 4u);
  const auto paths = EdgeDisjointPaths(g, 0, 4);
  EXPECT_EQ(paths.size(), 4u);
  CheckDisjointPaths(g, 0, 4, paths);
}

TEST(DisjointPathsTest, MaxPathsLimitsSearch) {
  Graph g;
  for (int i = 0; i < 5; ++i) g.AddNode(NodeKind::kServer);
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) g.AddEdge(i, j);
  }
  const auto paths = EdgeDisjointPaths(g, 0, 4, 2);
  EXPECT_EQ(paths.size(), 2u);
  CheckDisjointPaths(g, 0, 4, paths);
}

TEST(DisjointPathsTest, UnreachableGivesEmpty) {
  Graph g;
  g.AddNode(NodeKind::kServer);
  g.AddNode(NodeKind::kServer);
  EXPECT_TRUE(EdgeDisjointPaths(g, 0, 1).empty());
  EXPECT_EQ(EdgeConnectivity(g, 0, 1), 0u);
}

TEST(DisjointPathsTest, FailuresRemoveCapacity) {
  Graph g;
  for (int i = 0; i < 4; ++i) g.AddNode(NodeKind::kServer);
  const EdgeId direct = g.AddEdge(0, 3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 3);
  g.AddEdge(0, 2);
  g.AddEdge(2, 3);
  EXPECT_EQ(EdgeConnectivity(g, 0, 3), 3u);
  FailureSet failures{g};
  failures.KillEdge(direct);
  EXPECT_EQ(EdgeConnectivity(g, 0, 3, &failures), 2u);
  failures.KillNode(1);
  EXPECT_EQ(EdgeConnectivity(g, 0, 3, &failures), 1u);
  failures.KillNode(0);
  EXPECT_EQ(EdgeConnectivity(g, 0, 3, &failures), 0u);
  EXPECT_TRUE(EdgeDisjointPaths(g, 0, 3, 10, &failures).empty());
}

TEST(DisjointPathsTest, SameEndpointsThrow) {
  Graph g;
  g.AddNode(NodeKind::kServer);
  EXPECT_THROW(EdgeDisjointPaths(g, 0, 0), InvalidArgument);
  EXPECT_THROW(EdgeConnectivity(g, 0, 0), InvalidArgument);
}

TEST(DisjointPathsTest, AntiparallelFlowIsCancelled) {
  // Diamond with a crossing middle edge; flow decomposition must still
  // produce simple-link paths.
  Graph g;
  for (int i = 0; i < 6; ++i) g.AddNode(NodeKind::kServer);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 4);
  g.AddEdge(1, 4);
  g.AddEdge(2, 3);
  g.AddEdge(3, 5);
  g.AddEdge(4, 5);
  const auto paths = EdgeDisjointPaths(g, 0, 5);
  EXPECT_EQ(paths.size(), 2u);
  CheckDisjointPaths(g, 0, 5, paths);
}

Graph RandomGraph(Rng& rng, std::size_t nodes, std::size_t edges) {
  Graph g;
  for (std::size_t i = 0; i < nodes; ++i) g.AddNode(NodeKind::kServer);
  // A random spine keeps most of the graph connected; extra random edges add
  // the parallel capacity the flow solver has to find.
  for (std::size_t i = 1; i < nodes; ++i) {
    g.AddEdge(static_cast<NodeId>(rng.NextUint64(i)), static_cast<NodeId>(i));
  }
  for (std::size_t e = nodes - 1; e < edges; ++e) {
    const auto u = static_cast<NodeId>(rng.NextUint64(nodes));
    const auto v = static_cast<NodeId>(rng.NextUint64(nodes));
    if (u != v) g.AddEdge(u, v);
  }
  return g;
}

TEST(BatchConnectivityTest, MatchesSingleShotOnRandomGraphs) {
  Rng rng{2024};
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t nodes = 8 + rng.NextUint64(40);
    const Graph g = RandomGraph(rng, nodes, nodes * 2);
    const CsrView& csr = g.Csr();
    FlowScope batch_ws;
    EdgeConnectivityBatch batch{csr, *batch_ws};
    FlowScope single_ws;
    for (int q = 0; q < 30; ++q) {
      const auto src = static_cast<NodeId>(rng.NextUint64(nodes));
      auto dst = src;
      while (dst == src) dst = static_cast<NodeId>(rng.NextUint64(nodes));
      // Exercise both hint values: the cached-level path must be a pure
      // optimization.
      const bool repeated = (q % 3) != 0;
      EXPECT_EQ(batch.Connectivity(src, dst, repeated),
                EdgeConnectivity(csr, src, dst, *single_ws))
          << "trial " << trial << " query " << q << ": " << src << "->" << dst;
    }
  }
}

TEST(BatchConnectivityTest, RepeatedSourceSharesLevels) {
  Rng rng{7};
  const Graph g = RandomGraph(rng, 32, 80);
  const CsrView& csr = g.Csr();
  FlowScope ws;
  EdgeConnectivityBatch batch{csr, *ws};
  FlowScope single_ws;
  const NodeId src = 3;
  for (NodeId dst = 0; static_cast<std::size_t>(dst) < 32; ++dst) {
    if (dst == src) continue;
    EXPECT_EQ(batch.Connectivity(src, dst, /*repeated_source=*/true),
              EdgeConnectivity(csr, src, dst, *single_ws))
        << src << "->" << dst;
  }
}

TEST(BatchConnectivityTest, HonorsFailures) {
  Rng rng{99};
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = RandomGraph(rng, 24, 60);
    FailureSet failures{g};
    for (int k = 0; k < 4; ++k) {
      failures.KillEdge(static_cast<EdgeId>(rng.NextUint64(g.EdgeCount())));
    }
    failures.KillNode(static_cast<NodeId>(rng.NextUint64(24)));
    const CsrView& csr = g.Csr();
    FlowScope batch_ws;
    EdgeConnectivityBatch batch{csr, *batch_ws, &failures};
    FlowScope single_ws;
    for (int q = 0; q < 20; ++q) {
      const auto src = static_cast<NodeId>(rng.NextUint64(24));
      auto dst = src;
      while (dst == src) dst = static_cast<NodeId>(rng.NextUint64(24));
      EXPECT_EQ(batch.Connectivity(src, dst, q % 2 == 0),
                EdgeConnectivity(csr, src, dst, *single_ws, &failures))
          << "trial " << trial << ": " << src << "->" << dst;
    }
  }
}

}  // namespace
}  // namespace dcn::graph
