#include "metrics/link_usage.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "routing/abccc_routing.h"
#include "sim/traffic.h"
#include "topology/abccc.h"

namespace dcn::metrics {
namespace {

using topo::Abccc;
using topo::AbcccParams;
using topo::Digits;

TEST(LinkUsageTest, ClassesPartitionTheLinks) {
  const AbcccParams p{4, 2, 2};
  const Abccc net{p};
  const std::vector<LinkClassUsage> usage = ClassifyLinkUsage(net, {});
  ASSERT_EQ(usage.size(), 4u);  // crossbar + 3 levels
  EXPECT_EQ(usage[0].name, "crossbar");
  EXPECT_EQ(usage[0].links, net.ServerCount());
  std::size_t total = 0;
  for (const LinkClassUsage& cls : usage) total += cls.links;
  EXPECT_EQ(total, net.LinkCount());
  for (int level = 0; level <= p.k; ++level) {
    EXPECT_EQ(usage[1 + level].name, "level-" + std::to_string(level));
    EXPECT_EQ(usage[1 + level].links, p.RowCount());  // n per switch * n^k
  }
}

TEST(LinkUsageTest, SingleRouteCountsItsTraversals) {
  const AbcccParams p{4, 2, 2};
  const Abccc net{p};
  // Route from role 0 fixing level 1 only: crossbar hop + level-1 hop.
  const graph::NodeId src = net.ServerAt(Digits{0, 0, 0}, 0);
  const graph::NodeId dst = net.ServerAt(Digits{0, 3, 0}, 1);
  const routing::Route route = routing::AbcccRoute(net, src, dst);
  const std::vector<LinkClassUsage> usage = ClassifyLinkUsage(net, {route});
  EXPECT_EQ(usage[0].traversals, 2u);  // crossbar in, crossbar out...
  EXPECT_EQ(usage[2].traversals, 2u);  // level-1 switch in+out
  EXPECT_EQ(usage[1].traversals, 0u);
  EXPECT_EQ(usage[3].traversals, 0u);
}

TEST(LinkUsageTest, PermutationLoadsEveryClass) {
  const Abccc net{AbcccParams{4, 2, 2}};
  dcn::Rng rng{5};
  std::vector<routing::Route> routes;
  for (const sim::Flow& flow : sim::PermutationTraffic(net, rng)) {
    routes.push_back(routing::AbcccRoute(net, flow.src, flow.dst));
  }
  const std::vector<LinkClassUsage> usage = ClassifyLinkUsage(net, routes);
  for (const LinkClassUsage& cls : usage) {
    EXPECT_GT(cls.traversals, 0u) << cls.name;
    EXPECT_GE(cls.max_load, cls.mean_load) << cls.name;
  }
}

TEST(LinkUsageTest, WorksOnMixedRadices) {
  const topo::GeneralAbccc net{topo::GeneralAbcccParams{{4, 3, 2}, 2}};
  dcn::Rng rng{6};
  std::vector<routing::Route> routes;
  for (const sim::Flow& flow : sim::PermutationTraffic(net, rng)) {
    routes.push_back(routing::Route{net.Route(flow.src, flow.dst)});
  }
  const std::vector<LinkClassUsage> usage = ClassifyLinkUsage(net, routes);
  ASSERT_EQ(usage.size(), 4u);
  std::size_t total = 0;
  for (const LinkClassUsage& cls : usage) total += cls.links;
  EXPECT_EQ(total, net.LinkCount());
}

TEST(LinkUsageTest, SwitchClassAccessors) {
  const Abccc net{AbcccParams{4, 1, 2}};
  EXPECT_TRUE(net.IsCrossbar(net.CrossbarAt(0)));
  const graph::NodeId sw = net.LevelSwitchAt(1, Digits{2, 3});
  EXPECT_FALSE(net.IsCrossbar(sw));
  EXPECT_EQ(net.LevelOfSwitch(sw), 1);
  EXPECT_THROW(net.LevelOfSwitch(net.CrossbarAt(0)), dcn::InvalidArgument);
  EXPECT_FALSE(net.IsCrossbar(0));  // a server
}

}  // namespace
}  // namespace dcn::metrics
