#include "sim/flowsim.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "graph/graph.h"
#include "routing/route.h"

namespace dcn::sim {
namespace {

using graph::Graph;
using graph::NodeKind;
using routing::Route;

// 0 -e- 2(switch) -e- 1 and a separate pair 3 - 4.
Graph MakeSharedRelay() {
  Graph g;
  g.AddNode(NodeKind::kServer);  // 0
  g.AddNode(NodeKind::kServer);  // 1
  g.AddNode(NodeKind::kSwitch);  // 2
  g.AddNode(NodeKind::kServer);  // 3
  g.AddNode(NodeKind::kServer);  // 4
  g.AddEdge(0, 2);
  g.AddEdge(2, 1);
  g.AddEdge(3, 4);
  return g;
}

TEST(FlowSimTest, LoneFlowGetsFullCapacity) {
  const Graph g = MakeSharedRelay();
  const FlowSimResult result = MaxMinFairRates(g, {Route{{0, 2, 1}}});
  ASSERT_EQ(result.rates.size(), 1u);
  EXPECT_DOUBLE_EQ(result.rates[0], 1.0);
  EXPECT_DOUBLE_EQ(result.aggregate, 1.0);
  EXPECT_DOUBLE_EQ(result.abt, 1.0);
}

TEST(FlowSimTest, TwoFlowsShareABottleneckLink) {
  // Both flows traverse the same 0->1 directed link.
  Graph g2;
  g2.AddNode(NodeKind::kServer);  // 0
  g2.AddNode(NodeKind::kSwitch);  // 1
  g2.AddNode(NodeKind::kServer);  // 2
  g2.AddNode(NodeKind::kServer);  // 3
  g2.AddEdge(0, 1);
  g2.AddEdge(1, 2);
  g2.AddEdge(1, 3);
  const FlowSimResult result =
      MaxMinFairRates(g2, {Route{{0, 1, 2}}, Route{{0, 1, 3}}});
  EXPECT_DOUBLE_EQ(result.rates[0], 0.5);
  EXPECT_DOUBLE_EQ(result.rates[1], 0.5);
  EXPECT_DOUBLE_EQ(result.abt, 1.0);
}

TEST(FlowSimTest, OppositeDirectionsDoNotContend) {
  // Full duplex: 0->1 and 1->0 each get full capacity.
  Graph g;
  g.AddNode(NodeKind::kServer);
  g.AddNode(NodeKind::kServer);
  g.AddEdge(0, 1);
  const FlowSimResult result = MaxMinFairRates(g, {Route{{0, 1}}, Route{{1, 0}}});
  EXPECT_DOUBLE_EQ(result.rates[0], 1.0);
  EXPECT_DOUBLE_EQ(result.rates[1], 1.0);
}

TEST(FlowSimTest, MaxMinIsNotJustEqualSplit) {
  // Flows: A uses links L1+L2, B uses L1, C uses L2.
  //   servers: 0,1,2,3 in a path 0-1-2-3 (all servers so they can relay).
  // A: 0->3 (uses 0-1, 1-2, 2-3), B: 0->1, C: 2->3.
  Graph g;
  for (int i = 0; i < 4; ++i) g.AddNode(NodeKind::kServer);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  const FlowSimResult result = MaxMinFairRates(
      g, {Route{{0, 1, 2, 3}}, Route{{0, 1}}, Route{{2, 3}}});
  // A and B share 0-1 (and A and C share 2-3): A=B=C=0.5; middle link idle
  // at 0.5. Max-min: A=0.5, B=0.5, C=0.5.
  EXPECT_DOUBLE_EQ(result.rates[0], 0.5);
  EXPECT_DOUBLE_EQ(result.rates[1], 0.5);
  EXPECT_DOUBLE_EQ(result.rates[2], 0.5);
}

TEST(FlowSimTest, UnevenBottlenecksGiveUnevenRates) {
  // B shares with A on one link; C rides an uncongested link: C gets 1.0.
  Graph g;
  for (int i = 0; i < 5; ++i) g.AddNode(NodeKind::kServer);
  g.AddEdge(0, 1);  // shared by A and B
  g.AddEdge(1, 2);  // A only
  g.AddEdge(3, 4);  // C only
  const FlowSimResult result =
      MaxMinFairRates(g, {Route{{0, 1, 2}}, Route{{0, 1}}, Route{{3, 4}}});
  EXPECT_DOUBLE_EQ(result.rates[0], 0.5);
  EXPECT_DOUBLE_EQ(result.rates[1], 0.5);
  EXPECT_DOUBLE_EQ(result.rates[2], 1.0);
  EXPECT_DOUBLE_EQ(result.min_rate, 0.5);
  EXPECT_DOUBLE_EQ(result.max_rate, 1.0);
  EXPECT_DOUBLE_EQ(result.abt, 1.5);
  EXPECT_NEAR(result.mean_rate, 2.0 / 3.0, 1e-12);
}

TEST(FlowSimTest, LinkCapacityScalesRates) {
  Graph g;
  g.AddNode(NodeKind::kServer);
  g.AddNode(NodeKind::kServer);
  g.AddEdge(0, 1);
  const FlowSimResult result =
      MaxMinFairRates(g, {Route{{0, 1}}, Route{{0, 1}}}, 10.0);
  EXPECT_DOUBLE_EQ(result.rates[0], 5.0);
  EXPECT_DOUBLE_EQ(result.rates[1], 5.0);
}

TEST(FlowSimTest, EmptyRouteCountsAsZeroByDefault) {
  Graph g;
  g.AddNode(NodeKind::kServer);
  g.AddNode(NodeKind::kServer);
  g.AddEdge(0, 1);
  const FlowSimResult with_zero = MaxMinFairRates(g, {Route{{0, 1}}, Route{}});
  EXPECT_DOUBLE_EQ(with_zero.min_rate, 0.0);
  EXPECT_DOUBLE_EQ(with_zero.abt, 0.0);
  const FlowSimResult skipped =
      MaxMinFairRates(g, {Route{{0, 1}}, Route{}}, 1.0, false);
  EXPECT_DOUBLE_EQ(skipped.min_rate, 1.0);
  EXPECT_DOUBLE_EQ(skipped.abt, 1.0);
}

TEST(FlowSimTest, SelfRouteIsUnconstrained) {
  Graph g;
  g.AddNode(NodeKind::kServer);
  const FlowSimResult result = MaxMinFairRates(g, {Route{{0}}});
  EXPECT_DOUBLE_EQ(result.rates[0], 1.0);
}

TEST(FlowSimTest, JainFairnessIndex) {
  Graph g;
  g.AddNode(NodeKind::kServer);  // 0
  g.AddNode(NodeKind::kServer);  // 1
  g.AddNode(NodeKind::kServer);  // 2
  g.AddNode(NodeKind::kServer);  // 3
  g.AddEdge(0, 1);  // shared by A, B
  g.AddEdge(2, 3);  // C alone
  // A = B = 0.5, C = 1.0: Jain = (2)^2 / (3 * (0.25+0.25+1)) = 4/4.5.
  const FlowSimResult result =
      MaxMinFairRates(g, {Route{{0, 1}}, Route{{0, 1}}, Route{{2, 3}}});
  EXPECT_NEAR(result.jain_fairness, 4.0 / 4.5, 1e-12);
  // Equal rates => exactly 1.
  const FlowSimResult equal = MaxMinFairRates(g, {Route{{0, 1}}, Route{{0, 1}}});
  EXPECT_DOUBLE_EQ(equal.jain_fairness, 1.0);
}

TEST(FlowSimDemandTest, DemandCapsTheRate) {
  Graph g;
  g.AddNode(NodeKind::kServer);
  g.AddNode(NodeKind::kServer);
  g.AddEdge(0, 1);
  const FlowSimResult result = MaxMinFairRatesWithDemands(
      g, {Route{{0, 1}}}, {0.3});
  EXPECT_DOUBLE_EQ(result.rates[0], 0.3);
}

TEST(FlowSimDemandTest, SmallDemandReleasesShareToOthers) {
  // Two flows share one link; one only wants 0.2, so the other gets 0.8.
  Graph g;
  g.AddNode(NodeKind::kServer);  // 0
  g.AddNode(NodeKind::kSwitch);  // 1
  g.AddNode(NodeKind::kServer);  // 2
  g.AddNode(NodeKind::kServer);  // 3
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  const FlowSimResult result = MaxMinFairRatesWithDemands(
      g, {Route{{0, 1, 2}}, Route{{0, 1, 3}}}, {0.2, 10.0});
  EXPECT_DOUBLE_EQ(result.rates[0], 0.2);
  EXPECT_DOUBLE_EQ(result.rates[1], 0.8);
}

TEST(FlowSimDemandTest, HighDemandsReproduceUncappedResult) {
  Graph g;
  for (int i = 0; i < 4; ++i) g.AddNode(NodeKind::kServer);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  const std::vector<Route> routes{Route{{0, 1, 2, 3}}, Route{{0, 1}},
                                  Route{{2, 3}}};
  const FlowSimResult capped =
      MaxMinFairRatesWithDemands(g, routes, {100.0, 100.0, 100.0});
  const FlowSimResult uncapped = MaxMinFairRates(g, routes);
  for (std::size_t f = 0; f < routes.size(); ++f) {
    EXPECT_DOUBLE_EQ(capped.rates[f], uncapped.rates[f]);
  }
}

TEST(FlowSimDemandTest, CascadingDemandFreezes) {
  // Three flows on one link with demands 0.1, 0.2, 10: the two small ones
  // freeze at their demands, the big one takes the remaining 0.7.
  Graph g;
  g.AddNode(NodeKind::kServer);
  g.AddNode(NodeKind::kServer);
  g.AddEdge(0, 1);
  const std::vector<Route> routes{Route{{0, 1}}, Route{{0, 1}}, Route{{0, 1}}};
  const FlowSimResult result =
      MaxMinFairRatesWithDemands(g, routes, {0.1, 0.2, 10.0});
  EXPECT_DOUBLE_EQ(result.rates[0], 0.1);
  EXPECT_DOUBLE_EQ(result.rates[1], 0.2);
  EXPECT_NEAR(result.rates[2], 0.7, 1e-12);
}

TEST(FlowSimDemandTest, SelfRouteRespectsDemand) {
  Graph g;
  g.AddNode(NodeKind::kServer);
  const FlowSimResult result =
      MaxMinFairRatesWithDemands(g, {Route{{0}}}, {0.25});
  EXPECT_DOUBLE_EQ(result.rates[0], 0.25);
}

TEST(FlowSimDemandTest, Preconditions) {
  Graph g;
  g.AddNode(NodeKind::kServer);
  g.AddNode(NodeKind::kServer);
  g.AddEdge(0, 1);
  EXPECT_THROW(MaxMinFairRatesWithDemands(g, {Route{{0, 1}}}, {}),
               dcn::InvalidArgument);
  EXPECT_THROW(MaxMinFairRatesWithDemands(g, {Route{{0, 1}}}, {0.0}),
               dcn::InvalidArgument);
}

TEST(FlowSimTest, InvalidCapacityThrows) {
  Graph g;
  g.AddNode(NodeKind::kServer);
  EXPECT_THROW(MaxMinFairRates(g, {}, 0.0), dcn::InvalidArgument);
}

}  // namespace
}  // namespace dcn::sim
