#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace dcn {
namespace {

TEST(OnlineStatsTest, EmptyThrows) {
  OnlineStats stats;
  EXPECT_EQ(stats.Count(), 0);
  EXPECT_THROW(stats.Mean(), InvalidArgument);
  EXPECT_THROW(stats.Variance(), InvalidArgument);
  EXPECT_THROW(stats.Min(), InvalidArgument);
  EXPECT_THROW(stats.Max(), InvalidArgument);
}

TEST(OnlineStatsTest, MatchesDirectComputation) {
  const std::vector<double> values{3.0, 1.5, -2.0, 7.25, 0.0, 4.5};
  OnlineStats stats;
  for (double v : values) stats.Add(v);

  double mean = 0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size());

  EXPECT_EQ(stats.Count(), static_cast<std::int64_t>(values.size()));
  EXPECT_DOUBLE_EQ(stats.Mean(), mean);
  EXPECT_NEAR(stats.Variance(), var, 1e-12);
  EXPECT_NEAR(stats.Stddev(), std::sqrt(var), 1e-12);
  EXPECT_DOUBLE_EQ(stats.Min(), -2.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 7.25);
  EXPECT_NEAR(stats.Sum(), mean * static_cast<double>(values.size()), 1e-12);
}

TEST(OnlineStatsTest, SingleValue) {
  OnlineStats stats;
  stats.Add(5.0);
  EXPECT_DOUBLE_EQ(stats.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Min(), 5.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 5.0);
}

TEST(OnlineStatsTest, MergeEqualsSequential) {
  Rng rng{3};
  OnlineStats all, left, right;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.NextDouble() * 10 - 5;
    all.Add(v);
    (i % 2 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.Count(), all.Count());
  EXPECT_NEAR(left.Mean(), all.Mean(), 1e-9);
  EXPECT_NEAR(left.Variance(), all.Variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.Min(), all.Min());
  EXPECT_DOUBLE_EQ(left.Max(), all.Max());
}

TEST(OnlineStatsTest, MergeWithEmptySides) {
  OnlineStats a;
  OnlineStats b;
  b.Add(2.0);
  a.Merge(b);  // empty.Merge(nonempty)
  EXPECT_EQ(a.Count(), 1);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
  OnlineStats c;
  a.Merge(c);  // nonempty.Merge(empty)
  EXPECT_EQ(a.Count(), 1);
}

TEST(IntHistogramTest, MeanMinMax) {
  IntHistogram hist;
  hist.Add(2);
  hist.Add(4, 3);
  EXPECT_EQ(hist.Count(), 4);
  EXPECT_DOUBLE_EQ(hist.Mean(), (2.0 + 12.0) / 4.0);
  EXPECT_EQ(hist.Min(), 2);
  EXPECT_EQ(hist.Max(), 4);
}

TEST(IntHistogramTest, PercentilesAreExact) {
  IntHistogram hist;
  for (int v = 1; v <= 100; ++v) hist.Add(v);
  EXPECT_EQ(hist.Percentile(0.01), 1);
  EXPECT_EQ(hist.Percentile(0.5), 50);
  EXPECT_EQ(hist.Percentile(0.99), 99);
  EXPECT_EQ(hist.Percentile(1.0), 100);
}

TEST(IntHistogramTest, InvalidUsesThrow) {
  IntHistogram hist;
  EXPECT_THROW(hist.Mean(), InvalidArgument);
  EXPECT_THROW(hist.Percentile(0.5), InvalidArgument);
  hist.Add(1);
  EXPECT_THROW(hist.Percentile(0.0), InvalidArgument);
  EXPECT_THROW(hist.Percentile(1.5), InvalidArgument);
  EXPECT_THROW(hist.Add(1, 0), InvalidArgument);
}

TEST(IntHistogramTest, ToStringListsBuckets) {
  IntHistogram hist;
  hist.Add(3, 2);
  hist.Add(1);
  EXPECT_EQ(hist.ToString(), "{1: 1, 3: 2}");
}

TEST(SampleSetTest, PercentileAndExtremes) {
  SampleSet set;
  for (int v = 10; v >= 1; --v) set.Add(v);
  EXPECT_EQ(set.Count(), 10u);
  EXPECT_DOUBLE_EQ(set.Mean(), 5.5);
  EXPECT_DOUBLE_EQ(set.Min(), 1.0);
  EXPECT_DOUBLE_EQ(set.Max(), 10.0);
  EXPECT_DOUBLE_EQ(set.Percentile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(set.Percentile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(set.Percentile(0.1), 1.0);
}

TEST(SampleSetTest, InterleavedAddAndQuery) {
  SampleSet set;
  set.Add(3.0);
  EXPECT_DOUBLE_EQ(set.Percentile(1.0), 3.0);
  set.Add(1.0);  // must re-sort lazily
  EXPECT_DOUBLE_EQ(set.Min(), 1.0);
  EXPECT_DOUBLE_EQ(set.Percentile(1.0), 3.0);
}

TEST(SampleSetTest, EmptyThrows) {
  SampleSet set;
  EXPECT_THROW(set.Mean(), InvalidArgument);
  EXPECT_THROW(set.Percentile(0.5), InvalidArgument);
}

}  // namespace
}  // namespace dcn
