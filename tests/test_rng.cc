#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"

namespace dcn {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextUint64RespectsBound) {
  Rng rng{7};
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextUint64(bound), bound);
    }
  }
}

TEST(RngTest, NextUint64ZeroBoundThrows) {
  Rng rng{7};
  EXPECT_THROW(rng.NextUint64(0), InvalidArgument);
}

TEST(RngTest, NextUint64CoversAllResidues) {
  Rng rng{11};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextUint64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng{5};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(rng.NextInt(4, 3), InvalidArgument);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng{9};
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng{13};
  const double rate = 4.0;
  double sum = 0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) sum += rng.NextExponential(rate);
  EXPECT_NEAR(sum / samples, 1.0 / rate, 0.01);
  EXPECT_THROW(rng.NextExponential(0.0), InvalidArgument);
}

TEST(RngTest, BernoulliEdgeCasesAndFrequency) {
  Rng rng{17};
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng{19};
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::multiset<int> a(items.begin(), items.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent{23};
  Rng child = parent.Fork();
  // The two streams should diverge immediately.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

class PermutationSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PermutationSizes, RandomPermutationIsPermutation) {
  Rng rng{29};
  const std::size_t size = GetParam();
  const std::vector<std::size_t> perm = RandomPermutation(size, rng);
  ASSERT_EQ(perm.size(), size);
  std::vector<bool> seen(size, false);
  for (std::size_t v : perm) {
    ASSERT_LT(v, size);
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST_P(PermutationSizes, DerangementHasNoFixedPoint) {
  const std::size_t size = GetParam();
  if (size < 2) return;
  Rng rng{31};
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<std::size_t> perm = RandomDerangement(size, rng);
    ASSERT_EQ(perm.size(), size);
    for (std::size_t i = 0; i < size; ++i) {
      ASSERT_NE(perm[i], i) << "fixed point at " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PermutationSizes,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 16, 64, 257));

TEST(RngTest, DerangementOfOneThrows) {
  Rng rng{37};
  EXPECT_THROW(RandomDerangement(1, rng), InvalidArgument);
}

}  // namespace
}  // namespace dcn
