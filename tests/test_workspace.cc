// Stress tests for the epoch-stamped traversal workspaces (graph/workspace.h):
// thousands of reuses across interleaved epochs, graphs of different sizes,
// and nested scope borrows must never leak state between traversals.
#include "graph/workspace.h"

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "common/rng.h"
#include "graph/bfs.h"
#include "graph/csr.h"
#include "graph/paths.h"

namespace dcn::graph {
namespace {

Graph Ring(std::size_t nodes) {
  Graph g;
  for (std::size_t i = 0; i < nodes; ++i) g.AddNode(NodeKind::kServer);
  for (std::size_t i = 0; i < nodes; ++i) {
    g.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % nodes));
  }
  return g;
}

std::vector<int> ReferenceBfs(const Graph& g, NodeId src) {
  std::vector<int> dist(g.NodeCount(), kUnreachable);
  std::deque<NodeId> queue{src};
  dist[static_cast<std::size_t>(src)] = 0;
  while (!queue.empty()) {
    const NodeId node = queue.front();
    queue.pop_front();
    for (const HalfEdge& half : g.Neighbors(node)) {
      if (dist[static_cast<std::size_t>(half.to)] != kUnreachable) continue;
      dist[static_cast<std::size_t>(half.to)] =
          dist[static_cast<std::size_t>(node)] + 1;
      queue.push_back(half.to);
    }
  }
  return dist;
}

TEST(EpochMarksTest, EpochsIsolateThousandsOfRounds) {
  EpochMarks marks;
  Rng rng{7};
  for (int round = 0; round < 5000; ++round) {
    const std::size_t size = 16 + (round % 48);  // exercise growth + shrink
    marks.Begin(size);
    std::vector<bool> expect(size, false);
    for (int m = 0; m < 8; ++m) {
      const auto id = static_cast<std::int32_t>(rng.NextUint64(size));
      ASSERT_EQ(marks.Mark(id), !expect[static_cast<std::size_t>(id)]);
      expect[static_cast<std::size_t>(id)] = true;
    }
    for (std::size_t id = 0; id < size; ++id) {
      ASSERT_EQ(marks.Marked(static_cast<std::int32_t>(id)), expect[id])
          << "round " << round << " id " << id;
    }
  }
}

TEST(TraversalWorkspaceTest, ReusedAcrossSizesWithoutStaleState) {
  // One workspace serves BFS runs over graphs of very different sizes, in
  // both directions (grow then shrink): distances and visit sets must match
  // the reference every round.
  const Graph small = Ring(9);
  const Graph large = Ring(257);
  TraversalWorkspace ws;
  Rng rng{11};
  for (int round = 0; round < 2000; ++round) {
    const Graph& g = (round % 3 == 0) ? large : small;
    const auto src = static_cast<NodeId>(rng.NextUint64(g.NodeCount()));
    BfsDistances(g.Csr(), src, ws);
    const std::vector<int> expect = ReferenceBfs(g, src);
    for (NodeId node = 0; static_cast<std::size_t>(node) < g.NodeCount();
         ++node) {
      ASSERT_EQ(ws.Dist(node), expect[static_cast<std::size_t>(node)])
          << "round " << round;
    }
    ASSERT_EQ(ws.VisitOrder().size(), g.NodeCount());
  }
}

TEST(TraversalScopeTest, NestedBorrowsGetDistinctWorkspaces) {
  // An outer traversal must survive inner traversals that borrow their own
  // scope — the exact shape of SamplePathStats, where net.Route() runs a BFS
  // while the caller still reads the outer distances.
  const Graph outer_graph = Ring(33);
  const Graph inner_graph = Ring(12);
  TraversalScope outer;
  BfsDistances(outer_graph.Csr(), 0, *outer);
  const std::vector<int> expect = ReferenceBfs(outer_graph, 0);
  for (int round = 0; round < 1000; ++round) {
    {
      TraversalScope inner;
      BfsDistances(inner_graph.Csr(),
                   static_cast<NodeId>(round % inner_graph.NodeCount()),
                   *inner);
      ASSERT_NE(&*inner, &*outer);
    }
    // Interleave full BFS wrappers too — they borrow from the same freelist.
    ShortestPath(outer_graph, 0,
                 static_cast<NodeId>(round % outer_graph.NodeCount()));
    for (NodeId node = 0;
         static_cast<std::size_t>(node) < outer_graph.NodeCount(); ++node) {
      ASSERT_EQ(outer->Dist(node), expect[static_cast<std::size_t>(node)])
          << "outer workspace clobbered in round " << round;
    }
  }
}

TEST(FlowScopeTest, RepeatedSolvesOnOneWorkspaceStayCorrect) {
  // The same flow workspace runs Dinic over alternating graphs thousands of
  // times; a ring always has pair connectivity 2.
  const Graph small = Ring(8);
  const Graph large = Ring(64);
  FlowScope ws;
  for (int round = 0; round < 2000; ++round) {
    const Graph& g = (round % 2 == 0) ? small : large;
    const auto dst =
        static_cast<NodeId>(1 + (round % (g.NodeCount() - 1)));
    ASSERT_EQ(EdgeConnectivity(g.Csr(), 0, dst, *ws), 2u) << "round " << round;
  }
}

}  // namespace
}  // namespace dcn::graph
