// Differential lockdown of the sharded packet simulator (sim/packetsim.cc):
// RunPacketSim must produce a byte-identical PacketSimResult — counts,
// latency samples, utilizations, breakdown, obs histograms — to the serial
// reference RunPacketSimSerial at every DCN_THREADS, with the flight
// recorder on or off, across all supported topology families, random graphs,
// failure sets, and adversarial same-timestamp workloads. Simultaneous
// events are common here (service completions are birth times plus integer
// service counts), so these tests exercise the documented (time, key, kind,
// id) tie-break order for real, not as a corner case.
#include "sim/packetsim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "obs/flight.h"
#include "obs/obs.h"
#include "routing/bfs_router.h"
#include "routing/route.h"
#include "sim/traffic.h"
#include "topology/factory.h"

namespace dcn::sim {
namespace {

namespace flight = obs::flight;
using graph::Graph;
using graph::NodeKind;
using routing::Route;

class PacketSimParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    flight::Disable();
    obs::Reset();
  }
  void TearDown() override {
    flight::Disable();
    obs::Reset();
    SetThreadCount(0);
    unsetenv("DCN_THREADS");
  }
};

// Exact (==) multiset equality. SampleSet sorts lazily in place and Mean()
// sums in storage order, so both sides are forced into sorted order first
// (via Min()); after that, bit-equal sums and percentiles hold iff the two
// engines produced the identical samples.
void ExpectSameSamples(const SampleSet& a, const SampleSet& b) {
  ASSERT_EQ(a.Count(), b.Count());
  if (a.Count() == 0) return;
  EXPECT_EQ(a.Min(), b.Min());  // sorts both
  EXPECT_EQ(a.Mean(), b.Mean());
  EXPECT_EQ(a.Max(), b.Max());
  EXPECT_EQ(a.Percentile(0.25), b.Percentile(0.25));
  EXPECT_EQ(a.Percentile(0.5), b.Percentile(0.5));
  EXPECT_EQ(a.Percentile(0.99), b.Percentile(0.99));
}

void ExpectSameResult(const PacketSimResult& a, const PacketSimResult& b) {
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.measured, b.measured);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.max_queue_depth, b.max_queue_depth);
  EXPECT_EQ(a.max_link_utilization, b.max_link_utilization);
  EXPECT_EQ(a.mean_link_utilization, b.mean_link_utilization);
  ExpectSameSamples(a.latency, b.latency);
  ASSERT_EQ(a.breakdown.enabled, b.breakdown.enabled);
  if (a.breakdown.enabled) {
    ExpectSameSamples(a.breakdown.total, b.breakdown.total);
    ExpectSameSamples(a.breakdown.queueing, b.breakdown.queueing);
    EXPECT_EQ(a.breakdown.hops.Buckets(), b.breakdown.hops.Buckets());
  }
}

std::vector<Route> PermutationRoutes(const topo::Topology& net,
                                     std::uint64_t seed) {
  Rng rng{seed};
  return NativeRoutes(net, PermutationTraffic(net, rng));
}

// Shortest path over a bare Graph (the topology-aware routing::BfsRoute
// needs a Topology; the random-graph test has none).
Route LocalBfsRoute(const Graph& g, graph::NodeId src, graph::NodeId dst) {
  std::vector<graph::NodeId> parent(g.NodeCount(), graph::kInvalidNode);
  std::queue<graph::NodeId> frontier;
  parent[static_cast<std::size_t>(src)] = src;
  frontier.push(src);
  while (!frontier.empty() && parent[static_cast<std::size_t>(dst)] < 0) {
    const graph::NodeId u = frontier.front();
    frontier.pop();
    for (const graph::HalfEdge& half : g.Neighbors(u)) {
      if (parent[static_cast<std::size_t>(half.to)] >= 0) continue;
      parent[static_cast<std::size_t>(half.to)] = u;
      frontier.push(half.to);
    }
  }
  Route route;
  if (parent[static_cast<std::size_t>(dst)] < 0) return route;
  for (graph::NodeId at = dst; at != src; at = parent[static_cast<std::size_t>(at)]) {
    route.hops.push_back(at);
  }
  route.hops.push_back(src);
  std::reverse(route.hops.begin(), route.hops.end());
  return route;
}

// The per-run obs counters and histograms the sharded engine reconstructs
// from per-member partials; deltas must match the serial engine's exactly.
struct ObsReadout {
  std::uint64_t events = 0;
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t depth_count = 0;
  std::int64_t depth_sum = 0;
  std::uint64_t hops_count = 0;
  std::int64_t hops_sum = 0;
};

ObsReadout TakeObsReadout() {
  ObsReadout r;
  r.events = obs::CounterValue("packetsim/events");
  r.generated = obs::CounterValue("packetsim/generated");
  r.delivered = obs::CounterValue("packetsim/delivered");
  r.dropped = obs::CounterValue("packetsim/dropped");
  const obs::Snapshot snap = obs::TakeSnapshot();
  for (const auto& [name, h] : snap.histograms) {
    if (name == "packetsim/queue_depth") {
      r.depth_count = h.count;
      r.depth_sum = h.sum;
    } else if (name == "packetsim/hops") {
      r.hops_count = h.count;
      r.hops_sum = h.sum;
    }
  }
  return r;
}

void ExpectSameObs(const ObsReadout& a, const ObsReadout& b) {
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.depth_count, b.depth_count);
  EXPECT_EQ(a.depth_sum, b.depth_sum);
  EXPECT_EQ(a.hops_count, b.hops_count);
  EXPECT_EQ(a.hops_sum, b.hops_sum);
}

TEST_F(PacketSimParallelTest, AllFamiliesMatchSerialReferenceAtEveryThreadCount) {
  PacketSimConfig config;
  config.offered_load = 0.7;  // congested: simultaneous timestamps abound
  config.duration = 150;
  config.warmup = 30;
  config.queue_capacity = 8;
  for (const std::string& spec : topo::SupportedSpecs()) {
    SCOPED_TRACE(spec);
    const std::unique_ptr<topo::Topology> net = topo::MakeTopology(spec);
    const std::vector<Route> routes = PermutationRoutes(*net, 0x6001);

    SetThreadCount(1);
    obs::Reset();
    const PacketSimResult serial =
        RunPacketSimSerial(net->Network(), routes, config);
    const ObsReadout serial_obs = TakeObsReadout();
    // The deque-store legacy baseline pops the same (time, key) order.
    const PacketSimResult legacy =
        RunPacketSimLegacyBaseline(net->Network(), routes, config);
    ExpectSameResult(legacy, serial);

    for (int threads : {1, 3, 7}) {
      SCOPED_TRACE(threads);
      SetThreadCount(threads);
      obs::Reset();
      const PacketSimResult sharded =
          RunPacketSim(net->Network(), routes, config);
      ExpectSameResult(sharded, serial);
      ExpectSameObs(TakeObsReadout(), serial_obs);
    }
  }
}

TEST_F(PacketSimParallelTest, RecorderOnStaysByteIdenticalAndNonPerturbing) {
  PacketSimConfig config;
  config.offered_load = 0.8;
  config.duration = 200;
  config.warmup = 40;
  config.queue_capacity = 4;  // force drops through the recorder path too
  const std::unique_ptr<topo::Topology> net =
      topo::MakeTopology("abccc:n=4,k=2,c=3");
  const std::vector<Route> routes = PermutationRoutes(*net, 0x6002);

  SetThreadCount(1);
  const PacketSimResult dark = RunPacketSimSerial(net->Network(), routes, config);

  flight::Config fc;
  fc.sample_rate = 0.4;
  fc.latency_breakdown = true;
  flight::Enable(fc);
  obs::Reset();
  const PacketSimResult serial =
      RunPacketSimSerial(net->Network(), routes, config);
  const std::vector<flight::RunSnapshot> serial_runs = flight::TakeRunsSnapshot();
  ASSERT_EQ(serial_runs.size(), 1u);
  EXPECT_FALSE(serial_runs[0].packets.empty());

  for (int threads : {1, 2, 3, 4, 7, 8}) {
    SCOPED_TRACE(threads);
    SetThreadCount(threads);
    obs::Reset();
    const PacketSimResult sharded = RunPacketSim(net->Network(), routes, config);
    ExpectSameResult(sharded, serial);
    // Non-perturbing: identical to the recorder-off run (breakdown aside).
    EXPECT_EQ(sharded.delivered, dark.delivered);
    EXPECT_EQ(sharded.dropped, dark.dropped);
    ExpectSameSamples(sharded.latency, dark.latency);
    // The replayed record stream must be the serial engine's call-for-call:
    // same packets, same hop timestamps, same drop/delivery flags.
    const std::vector<flight::RunSnapshot> runs = flight::TakeRunsSnapshot();
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].sampling_skipped, serial_runs[0].sampling_skipped);
    ASSERT_EQ(runs[0].packets.size(), serial_runs[0].packets.size());
    for (std::size_t p = 0; p < runs[0].packets.size(); ++p) {
      const flight::PacketRecord& got = runs[0].packets[p];
      const flight::PacketRecord& want = serial_runs[0].packets[p];
      ASSERT_EQ(got.packet, want.packet);
      EXPECT_EQ(got.source, want.source);
      EXPECT_EQ(got.born, want.born);
      EXPECT_EQ(got.measured, want.measured);
      EXPECT_EQ(got.delivered, want.delivered);
      EXPECT_EQ(got.completed, want.completed);
      ASSERT_EQ(got.hops.size(), want.hops.size());
      for (std::size_t h = 0; h < got.hops.size(); ++h) {
        EXPECT_EQ(got.hops[h].link, want.hops[h].link);
        EXPECT_EQ(got.hops[h].enqueue, want.hops[h].enqueue);
        EXPECT_EQ(got.hops[h].start, want.hops[h].start);
        EXPECT_EQ(got.hops[h].depart, want.hops[h].depart);
        EXPECT_EQ(got.hops[h].dropped, want.hops[h].dropped);
      }
    }
    EXPECT_EQ(runs[0].lanes, serial_runs[0].lanes);
  }
}

TEST_F(PacketSimParallelTest, RandomGraphsMatchSerialReference) {
  // Random connected server/switch graphs with BFS routes — no topology
  // family structure to lean on.
  for (std::uint64_t graph_seed : {11u, 29u, 47u}) {
    SCOPED_TRACE(graph_seed);
    Rng rng{graph_seed};
    Graph g;
    constexpr std::size_t kSwitches = 12;
    constexpr std::size_t kServers = 16;
    for (std::size_t i = 0; i < kSwitches; ++i) g.AddNode(NodeKind::kSwitch);
    for (std::size_t s = 0; s < kSwitches; ++s) {
      g.AddEdge(static_cast<graph::NodeId>(s),
                static_cast<graph::NodeId>((s + 1) % kSwitches));  // ring
    }
    for (std::size_t c = 0; c < kSwitches; ++c) {  // random chords
      const auto u = static_cast<graph::NodeId>(rng.NextUint64(kSwitches));
      const auto v = static_cast<graph::NodeId>(rng.NextUint64(kSwitches));
      if (u != v) g.AddEdge(u, v);
    }
    std::vector<graph::NodeId> servers;
    for (std::size_t i = 0; i < kServers; ++i) {
      const graph::NodeId server = g.AddNode(NodeKind::kServer);
      g.AddEdge(server, static_cast<graph::NodeId>(rng.NextUint64(kSwitches)));
      servers.push_back(server);
    }
    std::vector<Route> routes;
    for (std::size_t i = 0; i < servers.size(); ++i) {
      const graph::NodeId dst = servers[(i + 5) % servers.size()];
      if (servers[i] == dst) continue;
      Route route = LocalBfsRoute(g, servers[i], dst);
      if (!route.Empty()) routes.push_back(std::move(route));
    }
    ASSERT_GE(routes.size(), 4u);

    PacketSimConfig config;
    config.offered_load = 0.9;
    config.duration = 180;
    config.warmup = 20;
    config.queue_capacity = 6;
    SetThreadCount(1);
    const PacketSimResult serial = RunPacketSimSerial(g, routes, config);
    for (int threads : {2, 3, 7}) {
      SCOPED_TRACE(threads);
      SetThreadCount(threads);
      ExpectSameResult(RunPacketSim(g, routes, config), serial);
    }
  }
}

TEST_F(PacketSimParallelTest, SeededFuzzOverTopologyLoadFailuresAndShards) {
  // Satellite: randomized sweep over (topology, load, failure set, shard
  // count). Routes are shortest live paths around the killed edges; the
  // sharded engine must agree with the serial reference byte-for-byte, and
  // with itself across repeat runs (documented tie-break order, not luck).
  const std::vector<std::string> specs = {"abccc:n=4,k=2,c=3", "bcube:n=4,k=2",
                                          "dcell:n=4,k=1"};
  const double loads[] = {0.3, 0.7, 1.2};
  const int shard_counts[] = {2, 3, 5, 7};
  Rng fuzz{0xfadedcab};
  for (int iter = 0; iter < 8; ++iter) {
    SCOPED_TRACE(iter);
    const std::unique_ptr<topo::Topology> net =
        topo::MakeTopology(specs[iter % specs.size()]);
    const Graph& g = net->Network();
    graph::FailureSet failures{g};
    const std::size_t kills = fuzz.NextUint64(4);
    for (std::size_t k = 0; k < kills; ++k) {
      failures.KillEdge(static_cast<graph::EdgeId>(fuzz.NextUint64(g.EdgeCount())));
    }
    Rng traffic{fuzz.NextUint64(~0ull)};
    const std::vector<Flow> flows = PermutationTraffic(*net, traffic);
    std::vector<Route> routes;
    for (const Flow& flow : flows) {
      Route route = routing::BfsRoute(*net, flow.src, flow.dst, &failures);
      if (!route.Empty()) routes.push_back(std::move(route));
    }
    if (routes.size() < 4) continue;  // fuzz disconnected too much

    PacketSimConfig config;
    config.offered_load = loads[iter % 3];
    config.duration = 120;
    config.warmup = 25;
    config.queue_capacity = 1 + static_cast<int>(fuzz.NextUint64(8));
    config.seed = fuzz.NextUint64(~0ull);

    SetThreadCount(1);
    const PacketSimResult serial = RunPacketSimSerial(g, routes, config);
    const int threads = shard_counts[iter % 4];
    SetThreadCount(threads);
    const PacketSimResult first = RunPacketSim(g, routes, config);
    ExpectSameResult(first, serial);
    // Re-run at the same shard count: the order is fixed, not incidental.
    ExpectSameResult(RunPacketSim(g, routes, config), serial);
  }
}

TEST_F(PacketSimParallelTest, ZeroDelayPingPongHandoffsResolveDeterministically) {
  // Two servers joined by two parallel links, each source bouncing packets
  // over and back: every depart hands off to the reverse link at the very
  // same timestamp, and at load 1.0 the two directions contend for full
  // queues — maximal same-instant cross-shard traffic. The documented order
  // (depart before its own handoff, links by id) must make every thread
  // count agree with the serial reference.
  Graph g;
  g.AddNode(NodeKind::kServer);  // 0
  g.AddNode(NodeKind::kServer);  // 1
  g.AddEdge(0, 1);
  g.AddEdge(0, 1);  // parallel edge: 0->1->0 stays link-simple
  const std::vector<Route> routes = {Route{{0, 1, 0}}, Route{{1, 0, 1}}};
  PacketSimConfig config;
  config.offered_load = 1.0;
  config.duration = 400;
  config.warmup = 50;
  config.queue_capacity = 2;
  SetThreadCount(1);
  const PacketSimResult serial = RunPacketSimSerial(g, routes, config);
  EXPECT_GT(serial.dropped, 0u);  // ties decide who drops; order must be fixed
  for (int threads : {1, 2, 3, 7}) {
    SCOPED_TRACE(threads);
    SetThreadCount(threads);
    ExpectSameResult(RunPacketSim(g, routes, config), serial);
  }
}

TEST_F(PacketSimParallelTest, EmptyTrafficRunMatchesAndCountsSourceRetirement) {
  // A load so low that no source fires inside the window: zero packets, but
  // the serial loop still pops one retirement event per source — the sharded
  // engine must report the identical event count and empty statistics.
  Graph g;
  g.AddNode(NodeKind::kServer);  // 0
  g.AddNode(NodeKind::kSwitch);  // 1
  g.AddNode(NodeKind::kServer);  // 2
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  const std::vector<Route> routes = {Route{{0, 1, 2}}, Route{{2, 1, 0}}};
  PacketSimConfig config;
  config.offered_load = 1e-9;
  config.duration = 10;
  config.warmup = 1;
  SetThreadCount(1);
  obs::Reset();
  const PacketSimResult serial = RunPacketSimSerial(g, routes, config);
  const ObsReadout serial_obs = TakeObsReadout();
  ASSERT_EQ(serial.generated, 0u);
  EXPECT_EQ(serial.latency.Count(), 0u);
  EXPECT_EQ(serial_obs.events, routes.size());  // one retirement pop each
  for (int threads : {1, 3}) {
    SCOPED_TRACE(threads);
    SetThreadCount(threads);
    obs::Reset();
    ExpectSameResult(RunPacketSim(g, routes, config), serial);
    ExpectSameObs(TakeObsReadout(), serial_obs);
  }
  // Recorder on over an empty run: still identical, still zero records.
  flight::Config fc;
  fc.sample_rate = 1.0;
  fc.latency_breakdown = true;
  flight::Enable(fc);
  obs::Reset();
  SetThreadCount(3);
  const PacketSimResult lit = RunPacketSim(g, routes, config);
  EXPECT_EQ(lit.generated, 0u);
  EXPECT_TRUE(lit.breakdown.enabled);
  EXPECT_EQ(lit.breakdown.total.Count(), 0u);
  const std::vector<flight::RunSnapshot> runs = flight::TakeRunsSnapshot();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_TRUE(runs[0].packets.empty());
}

TEST_F(PacketSimParallelTest, MultipathSprayMatchesSerialUnderBothPolicies) {
  const std::unique_ptr<topo::Topology> net =
      topo::MakeTopology("bcube:n=4,k=2");
  Rng rng{0x6003};
  const std::vector<Flow> flows = PermutationTraffic(*net, rng);
  // Two candidate routes per source: the native route and a BFS route.
  std::vector<std::vector<Route>> candidates;
  for (const Flow& flow : flows) {
    std::vector<Route> set;
    set.push_back(Route{net->Route(flow.src, flow.dst)});
    Route bfs = routing::BfsRoute(*net, flow.src, flow.dst);
    if (!bfs.Empty()) set.push_back(std::move(bfs));
    candidates.push_back(std::move(set));
  }
  PacketSimConfig config;
  config.offered_load = 0.8;
  config.duration = 150;
  config.warmup = 30;
  for (const SprayPolicy policy :
       {SprayPolicy::kRoundRobin, SprayPolicy::kRandomPerPacket}) {
    SCOPED_TRACE(static_cast<int>(policy));
    SetThreadCount(1);
    const PacketSimResult serial = RunPacketSimMultipathSerial(
        net->Network(), candidates, config, policy);
    for (int threads : {1, 3, 7}) {
      SCOPED_TRACE(threads);
      SetThreadCount(threads);
      ExpectSameResult(
          RunPacketSimMultipath(net->Network(), candidates, config, policy),
          serial);
    }
  }
}

}  // namespace
}  // namespace dcn::sim
