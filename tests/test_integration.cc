// Cross-module integration tests: build real networks, route real traffic,
// and check the qualitative claims the paper's evaluation rests on.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "metrics/bisection.h"
#include "metrics/path_metrics.h"
#include "routing/abccc_routing.h"
#include "routing/bfs_router.h"
#include "routing/fault_routing.h"
#include "routing/route.h"
#include "sim/failures.h"
#include "sim/flowsim.h"
#include "sim/traffic.h"
#include "topology/abccc.h"
#include "topology/bccc.h"
#include "topology/bcube.h"
#include "topology/cost_model.h"
#include "topology/dcell.h"
#include "topology/fattree.h"
#include "topology/ficonn.h"
#include "topology/gabccc.h"

namespace dcn {
namespace {

using topo::Abccc;
using topo::AbcccParams;

std::vector<std::unique_ptr<topo::Topology>> AllTopologies() {
  std::vector<std::unique_ptr<topo::Topology>> nets;
  nets.push_back(std::make_unique<Abccc>(AbcccParams{4, 2, 3}));
  nets.push_back(std::make_unique<topo::Bccc>(4, 2));
  nets.push_back(
      std::make_unique<topo::GeneralAbccc>(topo::GeneralAbcccParams{{4, 4, 3}, 2}));
  nets.push_back(std::make_unique<topo::Bcube>(4, 2));
  nets.push_back(std::make_unique<topo::Dcell>(4, 1));
  nets.push_back(std::make_unique<topo::FiConn>(4, 2));
  nets.push_back(std::make_unique<topo::FatTree>(4));
  return nets;
}

TEST(IntegrationTest, NativeRoutingIsValidOnEveryTopology) {
  Rng rng{61};
  for (const auto& net : AllTopologies()) {
    const auto servers = net->Servers();
    for (int trial = 0; trial < 30; ++trial) {
      const graph::NodeId src = servers[rng.NextUint64(servers.size())];
      const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
      const routing::Route route{net->Route(src, dst)};
      EXPECT_EQ(routing::ValidateRoute(net->Network(), route), "")
          << net->Describe();
      EXPECT_LE(static_cast<int>(route.LinkCount()), net->RouteLengthBound())
          << net->Describe();
    }
  }
}

TEST(IntegrationTest, BfsRouterAgreesWithTopologyOnReachability) {
  Rng rng{62};
  for (const auto& net : AllTopologies()) {
    const auto servers = net->Servers();
    const graph::NodeId src = servers[0];
    const graph::NodeId dst = servers[servers.size() - 1];
    const routing::Route bfs = routing::BfsRoute(*net, src, dst);
    ASSERT_FALSE(bfs.Empty()) << net->Describe();
    EXPECT_LE(bfs.LinkCount(), routing::Route{net->Route(src, dst)}.LinkCount());
  }
}

TEST(IntegrationTest, PermutationThroughputIsPositiveEverywhere) {
  Rng rng{63};
  for (const auto& net : AllTopologies()) {
    Rng traffic_rng = rng.Fork();
    const std::vector<sim::Flow> flows = sim::PermutationTraffic(*net, traffic_rng);
    std::vector<routing::Route> routes;
    routes.reserve(flows.size());
    for (const sim::Flow& flow : flows) {
      routes.push_back(routing::Route{net->Route(flow.src, flow.dst)});
    }
    const sim::FlowSimResult result = sim::MaxMinFairRates(net->Network(), routes);
    EXPECT_GT(result.min_rate, 0.0) << net->Describe();
    EXPECT_GT(result.aggregate, 0.0) << net->Describe();
    EXPECT_LE(result.max_rate, 1.0 + 1e-9) << net->Describe();
  }
}

// The paper's headline trade-off: raising c shortens rows, which shortens
// the diameter, at the price of more NIC ports per server.
TEST(IntegrationTest, PortCountTradesDiameterForCost) {
  const int n = 4, k = 2;
  int previous_diameter = 1 << 30;
  double previous_ports = 0;
  for (int c : {2, 3, 4}) {
    const Abccc net{AbcccParams{n, k, c}};
    const metrics::ExactPathStats stats = metrics::ExactServerPathStats(net);
    EXPECT_LE(stats.diameter, previous_diameter)
        << "diameter should not grow with c";
    previous_diameter = stats.diameter;
    const topo::CapexReport cost = topo::EvaluateCost(net);
    const double ports =
        static_cast<double>(cost.nic_ports) / static_cast<double>(cost.servers);
    EXPECT_GE(ports, previous_ports) << "NIC ports per server grow with c";
    previous_ports = ports;
  }
}

// BCCC's short-diameter claim relative to its cost class: ABCCC(4,2,2) has
// dual-port servers like DCell(4,1) but scales to far more servers.
TEST(IntegrationTest, AbcccScalesFurtherThanDcellAtSamePortCount) {
  const Abccc abccc{AbcccParams{4, 2, 2}};
  const topo::Dcell dcell{4, 1};
  EXPECT_EQ(abccc.ServerPorts(), 2);
  EXPECT_EQ(dcell.ServerPorts(), 2);
  EXPECT_GT(abccc.ServerCount(), dcell.ServerCount());
}

TEST(IntegrationTest, FaultToleranceDegradesGracefully) {
  const Abccc net{AbcccParams{4, 2, 2}};
  Rng rng{64};
  double previous_success = 1.1;
  for (double rate : {0.0, 0.05, 0.15}) {
    Rng fail_rng{1234};
    const graph::FailureSet failures =
        sim::RandomFailures(net, rate, rate, 0.0, fail_rng);
    const auto servers = net.Servers();
    int success = 0;
    const int trials = 80;
    for (int t = 0; t < trials; ++t) {
      const graph::NodeId src = servers[rng.NextUint64(servers.size())];
      const graph::NodeId dst = servers[rng.NextUint64(servers.size())];
      if (src == dst) {
        ++success;
        continue;
      }
      const routing::Route route =
          routing::AbcccFaultTolerantRoute(net, src, dst, failures, rng);
      if (!route.Empty()) ++success;
    }
    const double ratio = static_cast<double>(success) / trials;
    EXPECT_LE(ratio, previous_success + 0.05);
    previous_success = ratio;
    if (rate == 0.0) {
      EXPECT_DOUBLE_EQ(ratio, 1.0);
    }
  }
}

TEST(IntegrationTest, MeasuredBisectionNeverExceedsLinkCut) {
  // Sanity across the family: measured bisection is positive and at most
  // the total links touching one half.
  for (const auto& net : AllTopologies()) {
    const std::int64_t cut = metrics::MeasureBisection(*net);
    EXPECT_GT(cut, 0) << net->Describe();
    EXPECT_LT(cut, static_cast<std::int64_t>(net->LinkCount()))
        << net->Describe();
  }
}

TEST(IntegrationTest, ServerCentricDesignsBeatFatTreeOnSwitchCount) {
  // Per server, server-centric designs need fewer switch ports.
  const topo::FatTree fattree{4};
  const Abccc abccc{AbcccParams{4, 2, 2}};
  const topo::CapexReport ft = topo::EvaluateCost(fattree);
  const topo::CapexReport ab = topo::EvaluateCost(abccc);
  const double ft_switch_ports_per_server =
      static_cast<double>(ft.switch_ports) / static_cast<double>(ft.servers);
  const double ab_switch_ports_per_server =
      static_cast<double>(ab.switch_ports) / static_cast<double>(ab.servers);
  EXPECT_LT(ab_switch_ports_per_server, ft_switch_ports_per_server);
}

}  // namespace
}  // namespace dcn
