// obs/flight.h: the flight recorder observes without perturbing — simulation
// results are byte-identical with the recorder on or off, sampled lifecycle
// records are identical at any thread count, the per-run latency breakdown
// decomposes exactly, FCT/rate flow records round-trip through the CSV
// export, and the Chrome trace gains matched flow start/finish events.
#include "obs/flight.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "graph/graph.h"
#include "obs/obs.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "routing/broadcast.h"
#include "routing/route.h"
#include "sim/broadcast_sim.h"
#include "sim/fluid.h"
#include "sim/flowsim.h"
#include "sim/packetsim.h"
#include "topology/abccc.h"

namespace dcn::obs::flight {
namespace {

using graph::Graph;
using graph::NodeKind;
using routing::Route;

// Every test starts with the recorder disabled and an empty run store;
// obs::Reset() also clears the time-series registry and restarts run ids.
class FlightTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Disable();
    Reset();
  }
  void TearDown() override {
    Disable();
    Reset();
    SetThreadCount(0);
  }
};

Graph MakeContendedFabric() {
  // Two sources share a switch toward one sink: enough contention for
  // queueing, service-start handoffs, and (at high load) drops.
  Graph g;
  g.AddNode(NodeKind::kServer);  // 0
  g.AddNode(NodeKind::kServer);  // 1
  g.AddNode(NodeKind::kSwitch);  // 2
  g.AddNode(NodeKind::kServer);  // 3
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  return g;
}

sim::PacketSimConfig ContendedConfig() {
  sim::PacketSimConfig config;
  config.offered_load = 0.7;
  config.duration = 600;
  config.warmup = 100;
  config.queue_capacity = 4;  // forces drops
  return config;
}

sim::PacketSimResult RunContended(const Graph& g) {
  return sim::RunPacketSim(g, {Route{{0, 2, 3}}, Route{{1, 2, 3}}},
                           ContendedConfig());
}

void ExpectSameSamples(const SampleSet& a, const SampleSet& b) {
  ASSERT_EQ(a.Count(), b.Count());
  if (a.Count() == 0) return;
  EXPECT_DOUBLE_EQ(a.Mean(), b.Mean());
  EXPECT_DOUBLE_EQ(a.Min(), b.Min());
  EXPECT_DOUBLE_EQ(a.Max(), b.Max());
  EXPECT_DOUBLE_EQ(a.Percentile(0.5), b.Percentile(0.5));
  EXPECT_DOUBLE_EQ(a.Percentile(0.99), b.Percentile(0.99));
}

TEST_F(FlightTest, RecorderFullyOnLeavesSimResultsByteIdentical) {
  const Graph g = MakeContendedFabric();
  const sim::PacketSimResult off = RunContended(g);

  Config config;
  config.sample_rate = 0.5;
  config.bucket_width = 25.0;
  config.latency_breakdown = true;
  config.fct = true;
  Enable(config);
  const sim::PacketSimResult on = RunContended(g);

  EXPECT_EQ(off.generated, on.generated);
  EXPECT_EQ(off.measured, on.measured);
  EXPECT_EQ(off.delivered, on.delivered);
  EXPECT_EQ(off.dropped, on.dropped);
  EXPECT_EQ(off.max_queue_depth, on.max_queue_depth);
  EXPECT_DOUBLE_EQ(off.max_link_utilization, on.max_link_utilization);
  EXPECT_DOUBLE_EQ(off.mean_link_utilization, on.mean_link_utilization);
  ExpectSameSamples(off.latency, on.latency);
  EXPECT_FALSE(off.breakdown.enabled);
  EXPECT_TRUE(on.breakdown.enabled);
}

TEST_F(FlightTest, SampledRecordsAreIdenticalAtAnyThreadCount) {
  const Graph g = MakeContendedFabric();
  Config config;
  config.sample_rate = 0.3;
  config.bucket_width = 50.0;

  std::vector<RunSnapshot> at_1;
  std::vector<TimeSeriesRow> series_at_1;
  for (const int threads : {1, 3, 7}) {
    SetThreadCount(threads);
    Reset();  // restarts run ids, so run 0 is comparable across loops
    Enable(config);
    RunContended(g);
    const std::vector<RunSnapshot> runs = TakeRunsSnapshot();
    const std::vector<TimeSeriesRow> series = TakeTimeSeriesSnapshot();
    ASSERT_EQ(runs.size(), 1u) << "threads=" << threads;
    EXPECT_GT(runs[0].packets.size(), 10u) << "threads=" << threads;
    if (threads == 1) {
      at_1 = runs;
      series_at_1 = series;
      continue;
    }
    ASSERT_EQ(runs[0].packets.size(), at_1[0].packets.size())
        << "threads=" << threads;
    for (std::size_t p = 0; p < runs[0].packets.size(); ++p) {
      const PacketRecord& a = at_1[0].packets[p];
      const PacketRecord& b = runs[0].packets[p];
      EXPECT_EQ(a.packet, b.packet);
      EXPECT_EQ(a.source, b.source);
      EXPECT_EQ(a.delivered, b.delivered);
      EXPECT_DOUBLE_EQ(a.born, b.born);
      EXPECT_DOUBLE_EQ(a.completed, b.completed);
      ASSERT_EQ(a.hops.size(), b.hops.size());
      for (std::size_t h = 0; h < a.hops.size(); ++h) {
        EXPECT_EQ(a.hops[h].link, b.hops[h].link);
        EXPECT_EQ(a.hops[h].dropped, b.hops[h].dropped);
        EXPECT_DOUBLE_EQ(a.hops[h].enqueue, b.hops[h].enqueue);
        EXPECT_DOUBLE_EQ(a.hops[h].start, b.hops[h].start);
        EXPECT_DOUBLE_EQ(a.hops[h].depart, b.hops[h].depart);
      }
    }
    ASSERT_EQ(series.size(), series_at_1.size()) << "threads=" << threads;
    for (std::size_t s = 0; s < series.size(); ++s) {
      EXPECT_EQ(series[s].name, series_at_1[s].name);
      EXPECT_EQ(series[s].buckets, series_at_1[s].buckets)
          << series[s].name << " threads=" << threads;
    }
  }
}

TEST_F(FlightTest, HopTimestampsAreConsistent) {
  const Graph g = MakeContendedFabric();
  Config config;
  config.sample_rate = 1.0;
  Enable(config);
  RunContended(g);
  const std::vector<RunSnapshot> runs = TakeRunsSnapshot();
  ASSERT_EQ(runs.size(), 1u);
  std::size_t delivered = 0;
  for (const PacketRecord& packet : runs[0].packets) {
    ASSERT_FALSE(packet.hops.empty());
    double previous_depart = packet.born;
    for (const HopRecord& hop : packet.hops) {
      // enqueue at the previous hop's depart (or birth), service starts at
      // or after enqueue, departs exactly one service time later.
      EXPECT_DOUBLE_EQ(hop.enqueue, previous_depart);
      if (hop.dropped) break;
      EXPECT_GE(hop.start, hop.enqueue);
      EXPECT_DOUBLE_EQ(hop.depart, hop.start + 1.0);
      previous_depart = hop.depart;
    }
    if (packet.delivered) {
      ++delivered;
      EXPECT_EQ(packet.hops.size(), 2u);  // both fabrics are 2-link routes
      EXPECT_DOUBLE_EQ(packet.completed, packet.hops.back().depart);
    }
  }
  EXPECT_GT(delivered, 0u);
}

TEST_F(FlightTest, SamplingRateZeroAndCapAreHonored) {
  const Graph g = MakeContendedFabric();
  Config config;
  config.sample_rate = 0.0;
  Enable(config);
  RunContended(g);
  std::vector<RunSnapshot> runs = TakeRunsSnapshot();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_TRUE(runs[0].packets.empty());
  EXPECT_EQ(runs[0].sampling_skipped, 0u);

  Reset();
  config.sample_rate = 1.0;
  config.max_sampled_per_run = 16;
  Enable(config);
  const sim::PacketSimResult result = RunContended(g);
  runs = TakeRunsSnapshot();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].packets.size(), 16u);
  EXPECT_EQ(runs[0].sampling_skipped, result.generated - 16u);
}

TEST_F(FlightTest, BreakdownDecomposesLatencyExactly) {
  const Graph g = MakeContendedFabric();
  Config config;
  config.latency_breakdown = true;
  Enable(config);
  const sim::PacketSimResult result = RunContended(g);
  const LatencyBreakdown& bd = result.breakdown;
  ASSERT_TRUE(bd.enabled);
  EXPECT_EQ(bd.total.Count(), result.delivered);
  EXPECT_EQ(bd.queueing.Count(), result.delivered);
  EXPECT_EQ(static_cast<std::uint64_t>(bd.hops.Count()), result.delivered);
  // total = queueing + hops * service_time holds per packet, hence in means.
  EXPECT_NEAR(bd.total.Mean(),
              bd.queueing.Mean() + bd.hops.Mean() * bd.service_time, 1e-9);
  EXPECT_NEAR(bd.MeanSerialization(), bd.hops.Mean() * 1.0, 1e-12);
  ExpectSameSamples(bd.total, result.latency);
  EXPECT_GT(bd.QueueingShare(), 0.0);
  EXPECT_LT(bd.QueueingShare(), 1.0);
}

TEST_F(FlightTest, FluidRecordsCompletionTimesIncludingUnroutable) {
  Graph g;
  g.AddNode(NodeKind::kServer);
  g.AddNode(NodeKind::kServer);
  g.AddEdge(0, 1);
  Config config;
  config.fct = true;
  Enable(config);
  // Flow 1 has an empty route: unroutable, records +inf.
  sim::FluidCompletionTimes(g, {Route{{0, 1}}, Route{}}, {4.0, 2.0});
  const std::vector<RunSnapshot> runs = TakeRunsSnapshot();
  // The inner MaxMinFairRates calls must NOT have opened their own runs.
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].sim, "fluid");
  ASSERT_EQ(runs[0].flows.size(), 2u);
  EXPECT_EQ(runs[0].flows[0].kind, FlowKind::kFct);
  EXPECT_DOUBLE_EQ(runs[0].flows[0].bytes, 4.0);
  EXPECT_DOUBLE_EQ(runs[0].flows[0].value, 4.0);  // lone flow at capacity 1
  EXPECT_TRUE(std::isinf(runs[0].flows[1].value));

  std::ostringstream csv;
  WriteFctCsv(csv, runs);
  EXPECT_EQ(csv.str(),
            "run,sim,kind,flow,bytes,finish_time,rate\n"
            "0,fluid,fct,0,4,4,1\n"
            "0,fluid,fct,1,2,inf,0\n");
}

TEST_F(FlightTest, FlowsimRecordsMaxMinRates) {
  Graph g;
  g.AddNode(NodeKind::kServer);
  g.AddNode(NodeKind::kServer);
  g.AddEdge(0, 1);
  Config config;
  config.fct = true;
  Enable(config);
  sim::MaxMinFairRates(g, {Route{{0, 1}}, Route{{0, 1}}});
  const std::vector<RunSnapshot> runs = TakeRunsSnapshot();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].sim, "flowsim");
  ASSERT_EQ(runs[0].flows.size(), 2u);
  EXPECT_EQ(runs[0].flows[0].kind, FlowKind::kRate);
  EXPECT_DOUBLE_EQ(runs[0].flows[0].value, 0.5);
  EXPECT_DOUBLE_EQ(runs[0].flows[1].value, 0.5);
}

TEST_F(FlightTest, TraceExportEmitsMatchedFlowEvents) {
  const Graph g = MakeContendedFabric();
  Config config;
  config.sample_rate = 0.5;
  Enable(config);
  RunContended(g);
  const std::vector<RunSnapshot> runs = TakeRunsSnapshot();
  ASSERT_EQ(runs.size(), 1u);
  ASSERT_FALSE(runs[0].packets.empty());
  ASSERT_FALSE(runs[0].lanes.empty());

  std::ostringstream out;
  WriteChromeTrace(out, Snapshot{}, runs);
  const std::string trace = out.str();
  const auto count = [&trace](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = trace.find(needle); pos != std::string::npos;
         pos = trace.find(needle, pos + needle.size())) {
      ++n;
    }
    return n;
  };
  // One start and one finish per sampled packet, and at least one complete
  // event per recorded hop.
  EXPECT_EQ(count("\"ph\": \"s\""), runs[0].packets.size());
  EXPECT_EQ(count("\"ph\": \"f\""), runs[0].packets.size());
  EXPECT_GE(count("\"cat\": \"flight\""), 3 * runs[0].packets.size());
  EXPECT_EQ(count("\"name\": \"process_name\""), 1u);
  // Lane metadata names the directed links ("0->2" is route 0's first hop).
  EXPECT_NE(trace.find("\"name\": \"0->2\""), std::string::npos);
}

TEST_F(FlightTest, NestedRunScopesRecordNothing) {
  Config config;
  config.fct = true;
  Enable(config);
  RunScope outer{"outer", 10.0};
  ASSERT_NE(outer.recorder(), nullptr);
  RunScope inner{"inner", 10.0};
  EXPECT_EQ(inner.recorder(), nullptr);
}

TEST_F(FlightTest, BroadcastSimRecordsCopiesAndStaysIdentical) {
  const topo::Abccc net{topo::AbcccParams{4, 1, 2}};
  const routing::SpanningTree tree = routing::AbcccBroadcastTree(net, 0);
  sim::BroadcastSimConfig config;
  config.message_rate = 0.05;
  config.duration = 1500;
  config.warmup = 200;
  const sim::BroadcastSimResult off =
      sim::RunBroadcastSim(net.Network(), tree, config);

  Config flight_config;
  flight_config.sample_rate = 0.25;
  flight_config.bucket_width = 100.0;
  Enable(flight_config);
  const sim::BroadcastSimResult on =
      sim::RunBroadcastSim(net.Network(), tree, config);

  EXPECT_EQ(off.messages, on.messages);
  EXPECT_EQ(off.measured, on.measured);
  EXPECT_EQ(off.complete, on.complete);
  EXPECT_EQ(off.copies_dropped, on.copies_dropped);
  ExpectSameSamples(off.delivery_latency, on.delivery_latency);
  ExpectSameSamples(off.completion_latency, on.completion_latency);

  const std::vector<RunSnapshot> runs = TakeRunsSnapshot();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].sim, "broadcast");
  EXPECT_GT(runs[0].packets.size(), 10u);
  for (const PacketRecord& copy : runs[0].packets) {
    // Copies traverse exactly their 2-link segment (or fewer if dropped).
    EXPECT_LE(copy.hops.size(), 2u);
    EXPECT_GE(copy.hops.size(), 1u);
  }
}

TEST_F(FlightTest, ResetRestartsRunIds) {
  Config config;
  config.fct = true;
  Enable(config);
  { RunScope run{"a", 1.0}; }
  { RunScope run{"b", 1.0}; }
  std::vector<RunSnapshot> runs = TakeRunsSnapshot();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].run, 0);
  EXPECT_EQ(runs[1].run, 1);
  Reset();
  EXPECT_TRUE(TakeRunsSnapshot().empty());
  { RunScope run{"c", 1.0}; }
  runs = TakeRunsSnapshot();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].run, 0);  // ids restart after Reset
}

}  // namespace
}  // namespace dcn::obs::flight
