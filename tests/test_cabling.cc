#include "topology/cabling.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "topology/abccc.h"
#include "topology/bcube.h"
#include "topology/fattree.h"

namespace dcn::topo {
namespace {

TEST(CablingOptionsTest, Validation) {
  CablingOptions options;
  EXPECT_NO_THROW(options.Validate());
  options.servers_per_rack = 0;
  EXPECT_THROW(options.Validate(), dcn::InvalidArgument);
  options = CablingOptions{};
  options.slack_factor = 0.5;
  EXPECT_THROW(options.Validate(), dcn::InvalidArgument);
  options = CablingOptions{};
  options.rack_pitch_m = 0;
  EXPECT_THROW(options.Validate(), dcn::InvalidArgument);
}

TEST(AssignRacksTest, ServersFillRacksInIdOrder) {
  const Abccc net{AbcccParams{4, 1, 2}};  // 32 servers
  CablingOptions options;
  options.servers_per_rack = 10;
  const std::vector<std::size_t> rack = AssignRacks(net, options);
  EXPECT_EQ(rack[0], 0u);
  EXPECT_EQ(rack[9], 0u);
  EXPECT_EQ(rack[10], 1u);
  EXPECT_EQ(rack[29], 2u);
  EXPECT_EQ(rack[31], 3u);
}

TEST(AssignRacksTest, CrossbarJoinsItsRowsRack) {
  const Abccc net{AbcccParams{4, 1, 2}};  // rows of 2 servers
  CablingOptions options;
  options.servers_per_rack = 10;
  const std::vector<std::size_t> rack = AssignRacks(net, options);
  // Row 0 (servers 0,1) lives in rack 0; its crossbar must too.
  EXPECT_EQ(rack[net.CrossbarAt(0)], 0u);
  // Row 5 (servers 10,11) lives in rack 1.
  EXPECT_EQ(rack[net.CrossbarAt(5)], 1u);
}

TEST(AssignRacksTest, TieGoesToLowestRack) {
  const Bcube net{BcubeParams{2, 0}};  // servers 0,1 + one switch
  CablingOptions options;
  options.servers_per_rack = 1;  // server 0 -> rack 0, server 1 -> rack 1
  const std::vector<std::size_t> rack = AssignRacks(net, options);
  EXPECT_EQ(rack[2], 0u);  // 1-1 vote tie resolves low
}

TEST(PlanCablingTest, FullyLocalDeployment) {
  // ABCCC(2,0,2): two servers and one level switch, all in rack 0.
  const Abccc net{AbcccParams{2, 0, 2}};
  const CableBill bill = PlanCabling(net);
  EXPECT_EQ(bill.cables, 2u);
  EXPECT_EQ(bill.intra_rack, 2u);
  EXPECT_EQ(bill.racks, 1u);
  EXPECT_DOUBLE_EQ(bill.MeanLengthM(), 2.0);
  EXPECT_DOUBLE_EQ(bill.MaxLengthM(), 2.0);
}

TEST(PlanCablingTest, GridDistancesAreManhattanWithSlack) {
  const Bcube net{BcubeParams{2, 0}};
  CablingOptions options;
  options.servers_per_rack = 1;  // racks: server0=0, server1=1, switch joins 0
  const CableBill bill = PlanCabling(net, options);
  ASSERT_EQ(bill.cables, 2u);
  // server0-switch stays in rack 0.
  EXPECT_DOUBLE_EQ(bill.lengths_m[0], 2.0);
  // server1 (rack 1) to switch (rack 0): 2*2 + 1.5 * 1.2.
  EXPECT_DOUBLE_EQ(bill.lengths_m[1], 2 * 2.0 + 1.5 * 1.2);

  CablingOptions narrow = options;
  narrow.racks_per_row = 1;  // racks stack vertically: row pitch applies
  const CableBill tall = PlanCabling(net, narrow);
  EXPECT_DOUBLE_EQ(tall.lengths_m[1], 2 * 2.0 + 1.5 * 3.0);
}

TEST(PlanCablingTest, CountsAndStatsAreConsistent) {
  const Abccc net{AbcccParams{4, 2, 2}};
  const CableBill bill = PlanCabling(net);
  EXPECT_EQ(bill.cables, net.LinkCount());
  EXPECT_EQ(bill.lengths_m.size(), bill.cables);
  double total = 0;
  for (double length : bill.lengths_m) total += length;
  EXPECT_NEAR(total, bill.total_m, 1e-9);
  EXPECT_GE(bill.MaxLengthM(), bill.MeanLengthM());
  EXPECT_GT(bill.intra_rack, 0u);
  EXPECT_LT(bill.intra_rack, bill.cables);  // level-2 links leave the rack
}

TEST(CableBillTest, TieredPricing) {
  CableBill bill;
  bill.cables = 3;
  bill.lengths_m = {2.0, 6.9, 20.0};
  bill.total_m = 28.9;
  const CablePricing pricing;  // copper <= 7 m at $2/m; fiber $1/m + $120
  EXPECT_EQ(bill.FiberCount(pricing), 1u);
  EXPECT_DOUBLE_EQ(bill.CostUsd(pricing), 2.0 * 2 + 6.9 * 2 + (20.0 * 1 + 120.0));
}

TEST(CablingComparisonTest, RowLocalityKeepsMostAbcccCablesInRack) {
  // The structural point the module exists to show: rows + crossbars are
  // rack-local, so a majority of ABCCC's cables never leave a rack even
  // though its level-k planes span the room.
  const Abccc net{AbcccParams{4, 2, 2}};
  const CableBill bill = PlanCabling(net);
  const double local_fraction =
      static_cast<double>(bill.intra_rack) / static_cast<double>(bill.cables);
  EXPECT_GT(local_fraction, 0.5);
}

}  // namespace
}  // namespace dcn::topo
