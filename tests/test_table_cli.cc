#include <gtest/gtest.h>

#include <sstream>

#include "common/cli.h"
#include "common/error.h"
#include "common/table.h"

namespace dcn {
namespace {

TEST(TableTest, RendersAlignedColumns) {
  Table table{{"name", "value"}};
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  std::ostringstream out;
  table.Print(out, "demo");
  const std::string text = out.str();
  EXPECT_NE(text.find("== demo =="), std::string::npos);
  EXPECT_NE(text.find("| alpha |"), std::string::npos);
  EXPECT_NE(text.find("value"), std::string::npos);
  EXPECT_EQ(table.RowCount(), 2u);
}

TEST(TableTest, RowWidthMismatchThrows) {
  Table table{{"a", "b"}};
  EXPECT_THROW(table.AddRow({"only-one"}), InvalidArgument);
  EXPECT_THROW(Table{std::vector<std::string>{}}, InvalidArgument);
}

TEST(TableTest, CellFormatting) {
  EXPECT_EQ(Table::Cell(std::int64_t{-7}), "-7");
  EXPECT_EQ(Table::Cell(std::uint64_t{12345}), "12345");
  EXPECT_EQ(Table::Cell(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Percent(0.1234, 1), "12.3%");
}

TEST(CliArgsTest, ParsesKeysFlagsAndTypes) {
  const char* argv[] = {"prog", "--n=8", "--ratio=0.25", "--verbose",
                        "--name=abccc", "--flag=false"};
  CliArgs args{6, argv};
  EXPECT_TRUE(args.Has("n"));
  EXPECT_FALSE(args.Has("missing"));
  EXPECT_EQ(args.GetInt("n", 0), 8);
  EXPECT_EQ(args.GetInt("missing", 42), 42);
  EXPECT_DOUBLE_EQ(args.GetDouble("ratio", 0), 0.25);
  EXPECT_TRUE(args.GetBool("verbose", false));
  EXPECT_FALSE(args.GetBool("flag", true));
  EXPECT_EQ(args.GetString("name", ""), "abccc");
}

TEST(CliArgsTest, RejectsMalformedTokensAndValues) {
  const char* bad[] = {"prog", "positional"};
  EXPECT_THROW((CliArgs{2, bad}), InvalidArgument);

  const char* argv[] = {"prog", "--n=notanint", "--b=maybe"};
  CliArgs args{3, argv};
  EXPECT_THROW(args.GetInt("n", 0), InvalidArgument);
  EXPECT_THROW(args.GetBool("b", false), InvalidArgument);
}

}  // namespace
}  // namespace dcn
