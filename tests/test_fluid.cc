#include "sim/fluid.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "sim/traffic.h"
#include "topology/abccc.h"

namespace dcn::sim {
namespace {

using graph::Graph;
using graph::NodeKind;
using routing::Route;

Graph MakeSharedLink() {
  Graph g;
  g.AddNode(NodeKind::kServer);
  g.AddNode(NodeKind::kServer);
  g.AddEdge(0, 1);
  return g;
}

TEST(FluidTest, SingleFlowDrainsAtCapacity) {
  const Graph g = MakeSharedLink();
  const FluidResult result = FluidCompletionTimes(g, {Route{{0, 1}}}, {5.0});
  EXPECT_DOUBLE_EQ(result.finish_time[0], 5.0);
  EXPECT_DOUBLE_EQ(result.makespan, 5.0);
  EXPECT_EQ(result.rate_recomputations, 1);
}

TEST(FluidTest, EqualFlowsShareThenNothingToRelease) {
  const Graph g = MakeSharedLink();
  const FluidResult result =
      FluidCompletionTimes(g, {Route{{0, 1}}, Route{{0, 1}}}, {1.0, 1.0});
  // Both at rate 0.5 until both finish at t=2.
  EXPECT_DOUBLE_EQ(result.finish_time[0], 2.0);
  EXPECT_DOUBLE_EQ(result.finish_time[1], 2.0);
}

TEST(FluidTest, ShortFlowFinishesAndReleasesCapacity) {
  const Graph g = MakeSharedLink();
  const FluidResult result =
      FluidCompletionTimes(g, {Route{{0, 1}}, Route{{0, 1}}}, {1.0, 3.0});
  // Phase 1: both at 0.5; flow 0 done at t=2 (flow 1 has 2 left).
  // Phase 2: flow 1 alone at 1.0; done at t=4.
  EXPECT_DOUBLE_EQ(result.finish_time[0], 2.0);
  EXPECT_DOUBLE_EQ(result.finish_time[1], 4.0);
  EXPECT_EQ(result.rate_recomputations, 2);
  EXPECT_DOUBLE_EQ(result.makespan, 4.0);
}

TEST(FluidTest, IndependentFlowsDoNotInteract) {
  Graph g;
  for (int i = 0; i < 4; ++i) g.AddNode(NodeKind::kServer);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  const FluidResult result = FluidCompletionTimes(
      g, {Route{{0, 1}}, Route{{2, 3}}}, {2.0, 7.0});
  EXPECT_DOUBLE_EQ(result.finish_time[0], 2.0);
  EXPECT_DOUBLE_EQ(result.finish_time[1], 7.0);
}

TEST(FluidTest, UnroutableFlowNeverFinishes) {
  const Graph g = MakeSharedLink();
  const FluidResult result =
      FluidCompletionTimes(g, {Route{{0, 1}}, Route{}}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(result.finish_time[0], 1.0);
  EXPECT_TRUE(std::isinf(result.finish_time[1]));
  EXPECT_DOUBLE_EQ(result.makespan, 1.0);
}

TEST(FluidTest, CapacityScalesTime) {
  const Graph g = MakeSharedLink();
  const FluidResult slow = FluidCompletionTimes(g, {Route{{0, 1}}}, {10.0}, 1.0);
  const FluidResult fast = FluidCompletionTimes(g, {Route{{0, 1}}}, {10.0}, 10.0);
  EXPECT_DOUBLE_EQ(slow.finish_time[0], 10.0 * fast.finish_time[0]);
}

TEST(FluidTest, Preconditions) {
  const Graph g = MakeSharedLink();
  EXPECT_THROW(FluidCompletionTimes(g, {Route{{0, 1}}}, {}), dcn::InvalidArgument);
  EXPECT_THROW(FluidCompletionTimes(g, {Route{{0, 1}}}, {0.0}),
               dcn::InvalidArgument);
}

TEST(CoflowTest, CompletionIsSlowestMember) {
  FluidResult result;
  result.finish_time = {1.0, 5.0, 3.0};
  EXPECT_DOUBLE_EQ(CoflowCompletionTime(result, {0, 2}), 3.0);
  EXPECT_DOUBLE_EQ(CoflowCompletionTime(result, {0, 1, 2}), 5.0);
  EXPECT_THROW(CoflowCompletionTime(result, {}), dcn::InvalidArgument);
  EXPECT_THROW(CoflowCompletionTime(result, {9}), dcn::InvalidArgument);
}

TEST(FluidTest, PermutationOnAbcccCompletesEverything) {
  const topo::Abccc net{topo::AbcccParams{4, 1, 2}};
  dcn::Rng rng{7};
  std::vector<Route> routes;
  std::vector<double> bytes;
  for (const Flow& flow : PermutationTraffic(net, rng)) {
    routes.push_back(Route{net.Route(flow.src, flow.dst)});
    bytes.push_back(1.0 + rng.NextDouble() * 9.0);
  }
  const FluidResult result = FluidCompletionTimes(net.Network(), routes, bytes);
  for (std::size_t f = 0; f < routes.size(); ++f) {
    EXPECT_TRUE(std::isfinite(result.finish_time[f]));
    // A flow can never beat its solo time bytes / capacity.
    EXPECT_GE(result.finish_time[f], bytes[f] - 1e-9);
  }
  EXPECT_LE(result.rate_recomputations, static_cast<int>(routes.size()));
}

}  // namespace
}  // namespace dcn::sim
