#include "routing/route.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "graph/graph.h"

namespace dcn::routing {
namespace {

using graph::Graph;
using graph::NodeKind;

// server0 - switch2 - server1, plus direct server0 - server1 link.
Graph MakeRelay() {
  Graph g;
  g.AddNode(NodeKind::kServer);  // 0
  g.AddNode(NodeKind::kServer);  // 1
  g.AddNode(NodeKind::kSwitch);  // 2
  g.AddEdge(0, 2);               // edge 0
  g.AddEdge(2, 1);               // edge 1
  g.AddEdge(0, 1);               // edge 2
  return g;
}

TEST(RouteTest, BasicAccessors) {
  const Route route{{0, 2, 1}};
  EXPECT_FALSE(route.Empty());
  EXPECT_EQ(route.LinkCount(), 2u);
  EXPECT_EQ(route.Src(), 0);
  EXPECT_EQ(route.Dst(), 1);
  EXPECT_TRUE(Route{}.Empty());
  EXPECT_EQ(Route{}.LinkCount(), 0u);
}

TEST(ValidateRouteTest, AcceptsWalkableRoutes) {
  const Graph g = MakeRelay();
  EXPECT_EQ(ValidateRoute(g, Route{{0, 2, 1}}), "");
  EXPECT_EQ(ValidateRoute(g, Route{{0, 1}}), "");
  EXPECT_EQ(ValidateRoute(g, Route{{0}}), "");  // self route
}

TEST(ValidateRouteTest, RejectsStructuralProblems) {
  const Graph g = MakeRelay();
  EXPECT_NE(ValidateRoute(g, Route{}), "");
  EXPECT_NE(ValidateRoute(g, Route{{0, 9}}), "");        // out of range
  EXPECT_NE(ValidateRoute(g, Route{{2, 1}}), "");        // starts at switch
  EXPECT_NE(ValidateRoute(g, Route{{0, 2}}), "");        // ends at switch
  EXPECT_NE(ValidateRoute(g, Route{{1, 0, 0}}), "");     // repeated node
  // Reusing the single 0-1 link back and forth must be rejected.
  EXPECT_NE(ValidateRoute(g, Route{{0, 1, 0, 1}}), "");
}

TEST(ValidateRouteTest, RejectsDeadElements) {
  const Graph g = MakeRelay();
  graph::FailureSet failures{g};
  failures.KillNode(2);
  EXPECT_NE(ValidateRoute(g, Route{{0, 2, 1}}, &failures), "");
  EXPECT_EQ(ValidateRoute(g, Route{{0, 1}}, &failures), "");
  graph::FailureSet link_failure{g};
  link_failure.KillEdge(2);
  EXPECT_NE(ValidateRoute(g, Route{{0, 1}}, &link_failure), "");
  EXPECT_EQ(ValidateRoute(g, Route{{0, 2, 1}}, &link_failure), "");
}

TEST(RouteLinksTest, MapsHopsToEdges) {
  const Graph g = MakeRelay();
  const std::vector<graph::EdgeId> links = RouteLinks(g, Route{{0, 2, 1}});
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0], 0);
  EXPECT_EQ(links[1], 1);
}

TEST(RouteLinksTest, PicksLiveParallelLink) {
  Graph g;
  g.AddNode(NodeKind::kServer);
  g.AddNode(NodeKind::kServer);
  const graph::EdgeId first = g.AddEdge(0, 1);
  const graph::EdgeId second = g.AddEdge(0, 1);
  graph::FailureSet failures{g};
  failures.KillEdge(first);
  const std::vector<graph::EdgeId> links =
      RouteLinks(g, Route{{0, 1}}, &failures);
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0], second);
}

TEST(EraseLoopsTest, RemovesSimpleBacktrack) {
  // 0 -> 2 -> 1 -> 2 -> 1 loops; erasure keeps the first visit of each node.
  const Route erased = EraseLoops(Route{{0, 2, 1, 2, 1}});
  EXPECT_EQ(erased.hops, (std::vector<graph::NodeId>{0, 2, 1}));
}

TEST(EraseLoopsTest, KeepsSimpleWalksIntact) {
  const Route route{{0, 2, 1}};
  EXPECT_EQ(EraseLoops(route).hops, route.hops);
  EXPECT_EQ(EraseLoops(Route{{5}}).hops, (std::vector<graph::NodeId>{5}));
  EXPECT_TRUE(EraseLoops(Route{}).Empty());
}

TEST(EraseLoopsTest, NestedLoopsCollapse) {
  // Walk 0 1 2 3 1 4 0 5: the 1..1 loop collapses first, then 0..0.
  const Route erased = EraseLoops(Route{{0, 1, 2, 3, 1, 4, 0, 5}});
  EXPECT_EQ(erased.hops, (std::vector<graph::NodeId>{0, 5}));
}

TEST(EraseLoopsTest, ResultValidatesWhenSourceWalkWasAdjacent) {
  const Graph g = MakeRelay();
  // Walk 0 -> 2 -> 1 -> 2 -> 1: adjacent at every hop but reuses links.
  const Route walk{{0, 2, 1, 2, 1}};
  EXPECT_NE(ValidateRoute(g, walk), "");
  const Route erased = EraseLoops(walk);
  EXPECT_EQ(ValidateRoute(g, erased), "");
  EXPECT_EQ(erased.Dst(), 1);
}

TEST(RouteLinksTest, InvalidRouteThrows) {
  const Graph g = MakeRelay();
  EXPECT_THROW(RouteLinks(g, Route{{2, 1}}), dcn::FailedPrecondition);
  EXPECT_THROW(RouteLinks(g, Route{}), dcn::FailedPrecondition);
}

}  // namespace
}  // namespace dcn::routing
