// Differential battery for the Gomory–Hu cut tree: every answer it gives
// must equal a per-pair Dinic solve — on all supported topology families,
// random graphs, and graphs with failures — and the all-pairs stats built
// from it must be exact, at any thread count.
#include "graph/cuttree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>

#include "common/parallel.h"
#include "common/rng.h"
#include "graph/paths.h"
#include "metrics/bisection.h"
#include "topology/factory.h"

namespace dcn {
namespace {

graph::Graph RandomGraph(Rng& rng, std::size_t nodes, std::size_t edges) {
  graph::Graph g;
  for (std::size_t i = 0; i < nodes; ++i) g.AddNode(graph::NodeKind::kServer);
  for (std::size_t i = 1; i < nodes; ++i) {
    g.AddEdge(static_cast<graph::NodeId>(rng.NextUint64(i)),
              static_cast<graph::NodeId>(i));
  }
  for (std::size_t e = nodes - 1; e < edges; ++e) {
    const auto u = static_cast<graph::NodeId>(rng.NextUint64(nodes));
    const auto v = static_cast<graph::NodeId>(rng.NextUint64(nodes));
    if (u != v) g.AddEdge(u, v);
  }
  return g;
}

TEST(CutTreeTest, MatchesDinicOnRandomGraphs) {
  Rng rng{11};
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t nodes = 6 + rng.NextUint64(18);
    const graph::Graph g = RandomGraph(rng, nodes, nodes * 2);
    const graph::CutTree tree = graph::BuildCutTree(g);
    graph::FlowScope ws;
    for (graph::NodeId u = 0; static_cast<std::size_t>(u) < nodes; ++u) {
      for (graph::NodeId v = u + 1; static_cast<std::size_t>(v) < nodes; ++v) {
        EXPECT_EQ(tree.MinCut(u, v),
                  static_cast<std::int64_t>(
                      graph::EdgeConnectivity(g.Csr(), u, v, *ws)))
            << "trial " << trial << ": " << u << " vs " << v;
      }
    }
  }
}

TEST(CutTreeTest, MatchesDinicUnderFailures) {
  Rng rng{13};
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t nodes = 8 + rng.NextUint64(12);
    const graph::Graph g = RandomGraph(rng, nodes, nodes * 2);
    graph::FailureSet failures{g};
    for (int k = 0; k < 3; ++k) {
      failures.KillEdge(static_cast<graph::EdgeId>(rng.NextUint64(g.EdgeCount())));
    }
    failures.KillNode(static_cast<graph::NodeId>(rng.NextUint64(nodes)));
    const graph::CutTree tree =
        graph::BuildCutTree(g, /*edge_capacity=*/1, &failures);
    graph::FlowScope ws;
    for (graph::NodeId u = 0; static_cast<std::size_t>(u) < nodes; ++u) {
      for (graph::NodeId v = u + 1; static_cast<std::size_t>(v) < nodes; ++v) {
        EXPECT_EQ(tree.MinCut(u, v),
                  static_cast<std::int64_t>(
                      graph::EdgeConnectivity(g.Csr(), u, v, *ws, &failures)))
            << "trial " << trial << ": " << u << " vs " << v;
      }
    }
  }
}

TEST(CutTreeTest, EdgeCapacityScalesCuts) {
  Rng rng{17};
  const graph::Graph g = RandomGraph(rng, 14, 30);
  const graph::CutTree unit = graph::BuildCutTree(g, 1);
  const graph::CutTree weighted = graph::BuildCutTree(g, 5);
  for (graph::NodeId u = 0; u < 14; ++u) {
    for (graph::NodeId v = u + 1; v < 14; ++v) {
      EXPECT_EQ(weighted.MinCut(u, v), 5 * unit.MinCut(u, v));
    }
  }
}

TEST(CutTreeTest, IsolatedAndDeadNodesAreCutZeroLeaves) {
  graph::Graph g;
  for (int i = 0; i < 4; ++i) g.AddNode(graph::NodeKind::kServer);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);  // node 3 isolated
  graph::FailureSet failures{g};
  failures.KillNode(2);
  const graph::CutTree tree = graph::BuildCutTree(g, 1, &failures);
  EXPECT_EQ(tree.MinCut(0, 1), 1);
  EXPECT_EQ(tree.MinCut(0, 2), 0);  // dead
  EXPECT_EQ(tree.MinCut(0, 3), 0);  // isolated
  EXPECT_EQ(tree.MinCut(2, 3), 0);
}

// Brute-force twin of AllPairsCutStats: one Dinic per unordered server pair.
metrics::PairCutStats BruteAllPairs(const topo::Topology& net,
                                    const graph::FailureSet* failures) {
  const graph::CsrView& csr = net.Network().Csr();
  const auto servers = csr.Servers();
  graph::FlowScope ws;
  metrics::PairCutStats stats;
  stats.min_cut = std::numeric_limits<std::int64_t>::max();
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < servers.size(); ++i) {
    for (std::size_t j = i + 1; j < servers.size(); ++j) {
      std::int64_t cut = 0;
      if (failures == nullptr || (!failures->NodeDead(servers[i]) &&
                                  !failures->NodeDead(servers[j]))) {
        cut = static_cast<std::int64_t>(
            graph::EdgeConnectivity(csr, servers[i], servers[j], *ws, failures));
      }
      stats.cuts.Add(cut);
      stats.min_cut = std::min(stats.min_cut, cut);
      sum += cut;
      ++stats.pairs;
    }
  }
  stats.mean_cut = static_cast<double>(sum) / static_cast<double>(stats.pairs);
  return stats;
}

void ExpectSameStats(const metrics::PairCutStats& a,
                     const metrics::PairCutStats& b) {
  EXPECT_EQ(a.pairs, b.pairs);
  EXPECT_EQ(a.min_cut, b.min_cut);
  EXPECT_EQ(a.mean_cut, b.mean_cut);  // both exact integer sums / pairs
  EXPECT_EQ(a.cuts.Buckets(), b.cuts.Buckets());
}

TEST(AllPairsCutStatsTest, ExactOnSmallTopologies) {
  for (const char* spec : {"abccc:n=2,k=1,c=2", "bcube:n=3,k=1", "fattree:k=4"}) {
    SCOPED_TRACE(spec);
    const auto net = topo::MakeTopology(spec);
    ExpectSameStats(metrics::AllPairsCutStats(*net), BruteAllPairs(*net, nullptr));
  }
}

TEST(AllPairsCutStatsTest, ExactUnderFailures) {
  const auto net = topo::MakeTopology("bcube:n=3,k=1");
  graph::FailureSet failures{net->Network()};
  failures.KillNode(net->Servers()[1]);  // a dead server
  for (graph::NodeId n = 0;
       static_cast<std::size_t>(n) < net->Network().NodeCount(); ++n) {
    if (net->Network().IsSwitch(n)) {  // and a dead switch
      failures.KillNode(n);
      break;
    }
  }
  failures.KillEdge(0);
  ExpectSameStats(metrics::AllPairsCutStats(*net, &failures),
                  BruteAllPairs(*net, &failures));
}

// Every supported family: the tree must answer sampled pairs exactly like a
// fresh per-pair Dinic (full all-pairs brute force would be quadratic in
// servers, so pairs are sampled on the larger defaults).
class CutTreeFamilies : public ::testing::TestWithParam<std::string> {};

TEST_P(CutTreeFamilies, TreeMatchesSampledDinic) {
  const auto net = topo::MakeTopology(GetParam());
  const graph::CsrView& csr = net->Network().Csr();
  const graph::CutTree tree = graph::BuildCutTree(net->Network());
  const auto servers = csr.Servers();
  Rng rng{0xc07 + servers.size()};
  graph::FlowScope ws;
  for (int q = 0; q < 40; ++q) {
    const graph::NodeId u = servers[rng.NextUint64(servers.size())];
    graph::NodeId v = u;
    while (v == u) v = servers[rng.NextUint64(servers.size())];
    EXPECT_EQ(tree.MinCut(u, v),
              static_cast<std::int64_t>(graph::EdgeConnectivity(csr, u, v, *ws)))
        << u << " vs " << v;
  }
  // And the aggregate stats must cover every unordered server pair.
  const metrics::PairCutStats stats = metrics::AllPairsCutStats(*net);
  const auto s = static_cast<std::int64_t>(servers.size());
  EXPECT_EQ(stats.pairs, s * (s - 1) / 2);
  EXPECT_EQ(stats.cuts.Count(), stats.pairs);
  EXPECT_EQ(stats.cuts.Min(), stats.min_cut);
}

INSTANTIATE_TEST_SUITE_P(Families, CutTreeFamilies,
                         ::testing::ValuesIn(topo::SupportedSpecs()));

TEST(AllPairsCutStatsTest, ThreadCountInvariant) {
  const auto net = topo::MakeTopology("abccc:n=3,k=1,c=2");
  SetThreadCount(1);
  const metrics::PairCutStats serial = metrics::AllPairsCutStats(*net);
  for (int threads : {3, 7}) {
    SetThreadCount(threads);
    const metrics::PairCutStats parallel = metrics::AllPairsCutStats(*net);
    SCOPED_TRACE(threads);
    ExpectSameStats(serial, parallel);
  }
  SetThreadCount(0);
}

}  // namespace
}  // namespace dcn
